"""Job model, validation, ledger, and the worker pool behind the service.

One :class:`JobManager` owns everything between "HTTP request accepted"
and "result JSON ready":

* **Validation** — :func:`parse_job` turns a ``POST /jobs`` payload into
  a :class:`JobSpec`, constructing a real
  :class:`~repro.core.config.TestGenConfig` from the request's
  ``config`` object so every field check (types, ranges, unknown keys)
  is the library's own, not a parallel schema that could drift.
* **Coalescing** — identical in-flight requests (same canonical payload
  digest) collapse onto one job: deterministic seeds mean the result is
  the same, so running it twice is pure waste
  (``service.jobs.coalesced``).
* **Batching** — queued ``fsim`` jobs that share a simulator key and
  frame count are scored in one shared wide-word
  :meth:`~repro.faults.simulator.FaultSimulator.evaluate_batch` pass.
  From power-up state, ``evaluate``'s ``detected`` equals ``commit``'s
  total detections for the same vectors, so batched results are
  bit-identical to one-at-a-time runs (``service.batch.{passes,jobs}``).
* **Warm execution** — run jobs lease a resident simulator from the
  :class:`~repro.service.state.WarmRegistry` and lend it to
  :class:`~repro.core.generator.GaTestGenerator` via its ``fsim``
  parameter, so repeat requests skip parse/levelize/kernel-compile and
  reuse warm worker pools.
* **Process tier** — run jobs execute in the supervised
  :class:`~repro.service.tier.ProcessTier` worker pool (deadline,
  checkpoint-resuming retries, hard teardown + respawn, chaos hooks;
  see :mod:`repro.service.tier`), with *sticky degradation* back to
  bit-identical in-thread execution when the tier is exhausted
  (``service.jobs.degraded``).  Worker threads keep scheduling and
  fsim batching; they just stop hosting the GA runs themselves.
* **Control plane** — an integer ``priority`` orders the queue
  (highest first, FIFO within a priority); :meth:`JobManager.cancel`
  (``DELETE /jobs/<id>``) cancels queued jobs immediately and preempts
  running run jobs cooperatively — the generator writes a final
  ``preempted`` checkpoint at its next stage boundary, so resubmitting
  the identical config resumes bit-identically; a bounded queue
  (``REPRO_SERVICE_QUEUE_MAX``) rejects overflow with
  :class:`QueueFullError` (HTTP 429 + ``Retry-After``) *before*
  anything is ledgered, so every accepted job is durable.
* **Ledger + recovery** — every accepted/completed/failed transition is
  appended to a sealed JSONL ledger (the per-line content hashes of
  :func:`repro.core.checkpoint.seal_journal_record`).  On restart,
  accepted-but-unfinished jobs are re-enqueued; those with a run
  checkpoint on disk resume from it bit-identically (PR 4 contract),
  the rest re-run from scratch — deterministic seeds make that
  equivalent (``service.jobs.resumed``).
* **Telemetry** — each job records into its own
  :class:`StreamingCollector` (live ``GET /jobs/<id>/events`` stream,
  schema-valid JSONL trace); at completion the job trace is folded into
  the service collector under the ``job.<id>`` scope via
  ``merge_worker_trace``, so one service trace stays attributable.

See docs/SERVICE.md for the wire formats and operational contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.checkpoint import (
    CheckpointError,
    check_journal_record,
    seal_journal_record,
)
from ..core.config import TestGenConfig
from ..core.generator import GaTestGenerator, RunPreempted
from ..harness.campaign import result_to_json
from ..harness.distributed import config_to_json
from ..parallel.resilience import JOB_RETRIES_ENV, JOB_TIMEOUT_ENV, RetryPolicy
from ..telemetry import NullCollector, TelemetryCollector, get_collector, make_record
from .state import WarmRegistry, circuit_key, sim_key
from .tier import ProcessTier, TierExhausted

#: Default stage events between run-job checkpoint writes.
DEFAULT_CHECKPOINT_EVERY = 8

#: Environment knob: number of job worker threads.
WORKERS_ENV = "REPRO_SERVICE_WORKERS"

#: Environment knob: max queued jobs before admission control rejects
#: (empty/<= 0: unbounded).
QUEUE_MAX_ENV = "REPRO_SERVICE_QUEUE_MAX"

#: Seconds a rejected client is told to wait before retrying.
RETRY_AFTER_SECONDS = 1

#: Job lifecycle states.  ``queued -> running -> done | failed`` is the
#: normal flow; ``cancelled`` is a queued job killed by ``DELETE``
#: before execution, ``preempted`` is a running run job stopped
#: cooperatively at a stage boundary (resumable via resubmission).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "preempted")

#: States a job never leaves (and the ledger events that record them).
TERMINAL_STATES = ("done", "failed", "cancelled", "preempted")


class JobValidationError(ValueError):
    """A job request payload is malformed (HTTP layer maps this to 400)."""


class QueueFullError(Exception):
    """Admission control rejected a submission: the queue is at
    ``queue_max``.  Raised *before* the job is ledgered — a rejected
    request leaves no trace, so every ledgered job is durable.  The
    HTTP layer maps this to ``429`` with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: int = RETRY_AFTER_SECONDS) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StreamingCollector(TelemetryCollector):
    """A recording collector whose records can also be *streamed* live.

    The base collector only exposes the finished trace (:meth:`records`);
    the event-stream endpoint needs records as they happen.  Every
    emitted record is mirrored into a condition-guarded buffer that
    starts with the ``meta`` record and — once :meth:`finish_stream`
    runs — ends with the final ``counter`` records, so the streamed
    sequence is exactly a valid trace per docs/TELEMETRY.md
    (``validate_trace`` passes on what a client collects).
    """

    def __init__(self, source: str) -> None:
        super().__init__(source=source)
        self._stream_cond = threading.Condition()
        self._stream: List[dict] = [dict(self._meta)]
        self._stream_done = False

    def _emit(self, record: dict) -> None:
        super()._emit(record)
        with self._stream_cond:
            self._stream.append(record)
            self._stream_cond.notify_all()

    def finish_stream(self) -> None:
        """Append final counter records and mark the stream complete."""
        with self._stream_cond:
            if self._stream_done:
                return
            for name in sorted(self._counters):
                self._stream.append(
                    make_record("counter", name=name, value=self._counters[name])
                )
            self._stream_done = True
            self._stream_cond.notify_all()

    def stream_read(self, start: int, timeout: float = 0.5) -> Tuple[List[dict], bool]:
        """Records from index ``start`` on, waiting up to ``timeout``.

        Returns ``(new_records, finished)``; ``finished`` is only True
        once the stream is complete *and* the caller has everything.
        """
        with self._stream_cond:
            if len(self._stream) <= start and not self._stream_done:
                self._stream_cond.wait(timeout)
            fresh = self._stream[start:]
            done = self._stream_done and start + len(fresh) == len(self._stream)
            return fresh, done

    def absorb_worker_records(self, records: List[dict]) -> None:
        """Replay a tier worker's shipped trace into this collector.

        Events pass through :meth:`_emit` (so the live stream sees
        them in order), counter deltas fold into this collector's
        aggregates (so they appear once, as finals, when
        :meth:`finish_stream` runs), and the worker's ``meta`` record
        is dropped — the stream already opened with this job's own.
        The result is indistinguishable from the job having recorded
        in-process, which is what keeps tier execution transparent to
        ``GET /jobs/<id>/events`` clients.
        """
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                continue
            if kind == "counter":
                self.inc(record["name"], record["value"])
                continue
            self._emit(dict(record))


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------


@dataclass
class JobSpec:
    """A validated job request (what :func:`parse_job` produces)."""

    kind: str                            # "run" | "fsim"
    circuit: str                         # spec string (resolve_spec grammar)
    scale: float
    seed: int                            # circuit synthesis seed
    config: TestGenConfig                # simulator-shaping config
    vectors: Optional[List[List[int]]]   # fsim only
    checkpoint_every: int                # run only
    payload: dict                        # canonical raw request (for the ledger)
    digest: str                          # canonical payload digest (coalescing)
    priority: int = 0                    # queue ordering (higher first)
    deadline_s: Optional[float] = None   # run only: per-attempt deadline


def _canonical_digest(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobValidationError(message)


def parse_job(payload: object) -> JobSpec:
    """Validate a ``POST /jobs`` payload into a :class:`JobSpec`.

    Raises :class:`JobValidationError` with a client-actionable message
    on any malformation; config errors carry ``TestGenConfig``'s own
    diagnostics.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    kind = payload.get("kind")
    _require(kind in ("run", "fsim"), "field 'kind' must be 'run' or 'fsim'")
    circuit = payload.get("circuit")
    _require(
        isinstance(circuit, str) and bool(circuit),
        "field 'circuit' must be a non-empty string",
    )
    scale = payload.get("scale", 1.0)
    _require(
        isinstance(scale, (int, float)) and not isinstance(scale, bool) and scale > 0,
        "field 'scale' must be a positive number",
    )
    priority = payload.get("priority", 0)
    _require(
        isinstance(priority, int) and not isinstance(priority, bool),
        "field 'priority' must be an integer",
    )
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        _require(kind == "run", "field 'deadline_s' only applies to run jobs")
        _require(
            isinstance(deadline_s, (int, float))
            and not isinstance(deadline_s, bool) and deadline_s > 0,
            "field 'deadline_s' must be a positive number",
        )
        deadline_s = float(deadline_s)
    if kind == "run":
        allowed = {"kind", "circuit", "scale", "config", "checkpoint_every",
                   "priority", "deadline_s"}
        config_raw = payload.get("config", {})
        _require(isinstance(config_raw, dict), "field 'config' must be an object")
        try:
            config = TestGenConfig(**config_raw)
        except (TypeError, ValueError) as exc:
            raise JobValidationError(f"invalid config: {exc}") from exc
        checkpoint_every = payload.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)
        _require(
            isinstance(checkpoint_every, int) and not isinstance(checkpoint_every, bool)
            and checkpoint_every >= 1,
            "field 'checkpoint_every' must be a positive integer",
        )
        seed = config.seed
        vectors = None
    else:
        allowed = {"kind", "circuit", "scale", "seed", "kernel", "vectors",
                   "priority"}
        seed = payload.get("seed", 0)
        _require(
            isinstance(seed, int) and not isinstance(seed, bool),
            "field 'seed' must be an integer",
        )
        try:
            config = TestGenConfig(seed=seed, sim_kernel=payload.get("kernel"))
        except (TypeError, ValueError) as exc:
            raise JobValidationError(f"invalid kernel: {exc}") from exc
        vectors = payload.get("vectors")
        _require(
            isinstance(vectors, list) and bool(vectors),
            "field 'vectors' must be a non-empty list of bit vectors",
        )
        width = None
        for i, vec in enumerate(vectors):
            _require(
                isinstance(vec, list) and bool(vec)
                and all(bit in (0, 1) and not isinstance(bit, bool) for bit in vec),
                f"vectors[{i}] must be a non-empty list of 0/1 bits",
            )
            if width is None:
                width = len(vec)
            _require(
                len(vec) == width,
                f"vectors[{i}] has {len(vec)} bits, expected {width}",
            )
        checkpoint_every = DEFAULT_CHECKPOINT_EVERY
    unknown = sorted(set(payload) - allowed)
    _require(not unknown, f"unknown field(s): {', '.join(unknown)}")
    canonical = {key: payload[key] for key in sorted(payload)}
    return JobSpec(
        kind=kind,
        circuit=circuit,
        scale=float(scale),
        seed=seed,
        config=config,
        vectors=vectors,
        checkpoint_every=checkpoint_every,
        payload=canonical,
        digest=_canonical_digest(canonical),
        priority=priority,
        deadline_s=deadline_s,
    )


def run_key(spec: JobSpec, config: TestGenConfig) -> str:
    """The stable identity of one deterministic run — and therefore of
    its checkpoint file.

    Keyed on the circuit resolution inputs plus the *effective*
    (per-circuit) config's result-affecting digest; scheduling fields
    (``priority``, ``deadline_s``, ``checkpoint_every``) and execution
    knobs are excluded, so a resubmission of the same canonical run —
    even at a different priority or deadline — maps to the same
    checkpoint and resumes the work a preempted or killed predecessor
    left behind.
    """
    blob = json.dumps(
        [spec.circuit, spec.scale, spec.seed, config.digest()],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Jobs and the ledger
# ----------------------------------------------------------------------


@dataclass
class Job:
    """One accepted job and everything the API serves about it."""

    id: str
    seq: int
    spec: JobSpec
    status: str = "queued"
    result: Optional[dict] = None
    error: Optional[str] = None
    resumed: bool = False
    coalesced: int = 0
    collector: StreamingCollector = field(init=False)
    cancel_event: threading.Event = field(init=False)

    def __post_init__(self) -> None:
        self.collector = StreamingCollector(source=f"repro.service.job.{self.id}")
        self.cancel_event = threading.Event()

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "circuit": self.spec.circuit,
            "status": self.status,
            "result": self.result,
            "error": self.error,
            "resumed": self.resumed,
            "coalesced": self.coalesced,
            "priority": self.spec.priority,
            "cancel_requested": self.cancel_event.is_set(),
        }


class JobLedger:
    """Append-only sealed-JSONL record of every job state transition.

    Each line is an independent sealed record
    (:func:`~repro.core.checkpoint.seal_journal_record`), appended with
    flush+fsync so an accepted job survives a service SIGKILL.  A torn
    tail line (killed mid-append) is detected by its seal and skipped
    on load — corruption is localized to the one unfinished write, per
    the PR 4 journal contract.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        line = json.dumps(seal_journal_record(record), sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def load(self) -> List[dict]:
        """All intact records, oldest first; torn/corrupt lines skipped."""
        if not self.path.exists():
            return []
        records: List[dict] = []
        with self._lock:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                check_journal_record(record, lineno, self.path)
            except Exception:
                continue  # torn or corrupt line: skip, keep the rest
            records.append(record)
        return records


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------


def workers_from_env(default: int = 2) -> int:
    """Resolve the worker-thread count from :data:`WORKERS_ENV`."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def queue_max_from_env(default: Optional[int] = None) -> Optional[int]:
    """Resolve the queue bound from :data:`QUEUE_MAX_ENV` (None: unbounded)."""
    raw = os.environ.get(QUEUE_MAX_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else None


class JobManager:
    """Accepts, schedules, executes, and recovers jobs.

    ``state_dir`` holds the ledger (``ledger.jsonl``) and run
    checkpoints (``checkpoints/run-<runkey>.ckpt``, keyed by the job's
    deterministic :func:`run_key` so resubmissions resume prior work);
    pass the same directory to a restarted service and unfinished jobs
    are recovered.  ``workers`` threads schedule the queue (run jobs
    execute in the process tier unless ``use_tier=False`` or the tier
    degrades); with one worker, execution order (and therefore the
    service telemetry trace) is deterministic.  ``queue_max`` bounds
    the number of queued jobs (``None``: read ``REPRO_SERVICE_QUEUE_MAX``,
    unset means unbounded).
    """

    def __init__(
        self,
        state_dir: Path,
        collector: Optional[NullCollector] = None,
        workers: int = 2,
        cache_size: Optional[int] = None,
        queue_max: Optional[int] = None,
        use_tier: bool = True,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.collector = collector if collector is not None else get_collector()
        self.registry = WarmRegistry(collector=self.collector, max_sims=cache_size)
        self.ledger = JobLedger(self.state_dir / "ledger.jsonl")
        self.queue_max = queue_max if queue_max is not None else queue_max_from_env()
        self.use_tier = use_tier
        self.tier = ProcessTier(
            collector=self.collector, max_workers=max(1, workers)
        ) if use_tier else None
        self._tier_degraded = False
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._by_digest: Dict[str, str] = {}  # digest -> newest job id
        self._seq = 0
        self._stop = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"job-worker-{i}", daemon=True)
            for i in range(max(1, workers))
        ]
        self._recover()
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------

    def submit(self, payload: object) -> Tuple[Job, bool]:
        """Validate and enqueue a job; returns ``(job, coalesced)``.

        Raises :class:`JobValidationError` (HTTP 400) on a bad payload
        or an unresolvable circuit, and :class:`QueueFullError` (HTTP
        429) when admission control rejects — checked *before* the
        ledger append, so a rejected request is never ledgered.  An
        identical queued/running job absorbs the request instead of
        enqueueing a duplicate (coalescing is exempt from the queue
        bound: it adds no queue entry).
        """
        spec = parse_job(payload)
        # Resolve (and warm) the circuit now so an unknown name is a
        # 400 at submit, not a failed job later.
        try:
            self.registry.compiled(circuit_key(spec.circuit, spec.scale, spec.seed))
        except ValueError as exc:
            raise JobValidationError(str(exc)) from exc
        with self._cond:
            existing_id = self._by_digest.get(spec.digest)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.status in ("queued", "running"):
                    existing.coalesced += 1
                    if self.collector.enabled:
                        self.collector.inc("service.jobs.coalesced")
                    return existing, True
            if self.queue_max is not None:
                depth = sum(
                    1 for j in self._jobs.values() if j.status == "queued"
                )
                if depth >= self.queue_max:
                    if self.collector.enabled:
                        self.collector.inc("service.queue.rejected")
                    raise QueueFullError(
                        f"queue is full ({depth} of {self.queue_max} slots); "
                        "retry later"
                    )
            job = self._accept(spec)
            self._cond.notify_all()
        self.ledger.append(
            {"event": "accepted", "id": job.id, "seq": job.seq,
             "payload": spec.payload}
        )
        return job, False

    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel or preempt a job; returns its (possibly unchanged)
        status, or ``None`` for an unknown id.

        A *queued* job goes terminal (``cancelled``) immediately and is
        ledgered as such.  A *running* run job is preempted
        cooperatively: the stop file is touched and the cancel event
        set, the generator observes it at its next stage boundary,
        writes a final ``preempted`` checkpoint and the job lands in
        the ``preempted`` terminal state — the returned status is still
        ``running`` until that happens, so callers poll.  Running fsim
        jobs are single wide-word passes with no stage boundaries —
        they are not preemptible and simply finish.  Terminal jobs are
        a no-op (idempotent delete).
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.status == "queued":
                job.status = "cancelled"
                job.error = "cancelled before execution"
                self._cond.notify_all()
            elif job.status == "running":
                job.cancel_event.set()
                if job.spec.kind == "run":
                    self._stop_path(job).touch()
                return job.status
            else:
                return job.status
        # Queued -> cancelled: record the terminal transition outside
        # the lock (ledger appends fsync).
        self.ledger.append(
            {"event": "cancelled", "id": job.id,
             "error": "cancelled before execution"}
        )
        if self.collector.enabled:
            self.collector.inc("service.jobs.cancelled")
        job.collector.finish_stream()
        if self.collector.enabled:
            self.collector.merge_worker_trace(
                f"job.{job.id}", job.collector.records()
            )
        return "cancelled"

    def _accept(
        self,
        spec: JobSpec,
        resumed: bool = False,
        job_id: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Job:
        """Register a queued job (caller holds the lock).

        ``job_id``/``seq`` are only passed by ledger recovery, which
        preserves a job's identity across a service restart so clients
        keep polling the id they were given.
        """
        if seq is None:
            self._seq += 1
            seq = self._seq
        else:
            self._seq = max(self._seq, seq)
        if job_id is None:
            job_id = f"j{seq:04d}-{spec.digest[:8]}"
        job = Job(id=job_id, seq=seq, spec=spec)
        job.resumed = resumed
        self._jobs[job.id] = job
        self._by_digest[spec.digest] = job.id
        if self.collector.enabled:
            self.collector.inc("service.jobs.accepted")
        return job

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._cond:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def stats(self) -> dict:
        counts = {state: 0 for state in JOB_STATES}
        with self._cond:
            for job in self._jobs.values():
                counts[job.status] += 1
        return counts

    def queue_stats(self) -> dict:
        """Queue saturation for ``GET /healthz``: depth, bound, and
        queued counts per priority (keys are priority values as
        strings, JSON-object friendly)."""
        by_priority: Dict[str, int] = {}
        with self._cond:
            queued = [j for j in self._jobs.values() if j.status == "queued"]
        for job in queued:
            key = str(job.spec.priority)
            by_priority[key] = by_priority.get(key, 0) + 1
        return {
            "depth": len(queued),
            "max": self.queue_max,
            "by_priority": by_priority,
        }

    def tier_stats(self) -> dict:
        """Process-tier state for ``GET /healthz``."""
        stats = self.tier.stats() if self.tier is not None else {
            "workers": 0, "live": False, "restarts": 0, "retries": 0,
        }
        stats["enabled"] = self.tier is not None
        stats["degraded"] = self._tier_degraded
        return stats

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running (for tests/shutdown)."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not any(
                    j.status in ("queued", "running") for j in self._jobs.values()
                ),
                timeout,
            )

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the job table from the ledger; re-enqueue unfinished jobs.

        Finished jobs are restored verbatim (same id, stored result) so
        ``GET /jobs/<id>`` keeps answering across restarts; jobs that
        were accepted but never reached a terminal state are re-queued
        under their original id — with ``resume`` armed if their run
        checkpoint survived, in which case the finished run is
        bit-identical to an uninterrupted one (PR 4 contract), and from
        scratch otherwise, which the deterministic seed makes
        equivalent.
        """
        finished: Dict[str, dict] = {}
        accepted: List[dict] = []
        for record in self.ledger.load():
            event = record.get("event")
            if event == "accepted":
                accepted.append(record)
            elif event in ("completed", "failed", "cancelled", "preempted"):
                finished[record["id"]] = record
        for record in accepted:
            job_id = record.get("id", "")
            try:
                spec = parse_job(record.get("payload"))
                seq = int(record.get("seq", 0))
            except (JobValidationError, TypeError, ValueError):
                continue
            final = finished.get(job_id)
            with self._cond:
                job = self._accept(
                    spec, resumed=final is None, job_id=job_id, seq=seq
                )
                if final is not None:
                    job.resumed = False
                    job.status = {
                        "completed": "done", "failed": "failed",
                        "cancelled": "cancelled", "preempted": "preempted",
                    }[final["event"]]
                    job.result = final.get("result")
                    job.error = final.get("error")
                elif self.collector.enabled:
                    self.collector.inc("service.jobs.resumed")
            if job.status != "queued":
                job.collector.finish_stream()

    # -- execution -----------------------------------------------------

    def _checkpoint_path(self, job: Job, config: TestGenConfig) -> Path:
        """The job's run checkpoint, keyed by :func:`run_key` — not the
        job id — so a resubmission of the same canonical run (after a
        preemption, a crash, or at a different priority) finds and
        resumes the prior attempt's checkpoint."""
        root = self.state_dir / "checkpoints"
        root.mkdir(parents=True, exist_ok=True)
        return root / f"run-{run_key(job.spec, config)}.ckpt"

    def _stop_path(self, job: Job) -> Path:
        """The job's preemption stop file (touched by :meth:`cancel`,
        polled by the generator's stop hook — existence *is* the
        signal, which crosses the process-tier boundary for free)."""
        root = self.state_dir / "checkpoints"
        root.mkdir(parents=True, exist_ok=True)
        return root / f"{job.id}.stop"

    @staticmethod
    def queue_order(jobs) -> List[Job]:
        """Queued jobs in dispatch order: highest ``priority`` first,
        FIFO (submission ``seq``) within a priority."""
        return sorted(
            (j for j in jobs if j.status == "queued"),
            key=lambda j: (-j.spec.priority, j.seq),
        )

    def _worker(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._stop
                    or any(j.status == "queued" for j in self._jobs.values())
                )
                if self._stop:
                    return
                queued = self.queue_order(self._jobs.values())
                job = queued[0]
                job.status = "running"
                group = [job]
                if job.spec.kind == "fsim":
                    key = self._batch_key(job)
                    for other in queued[1:]:
                        if other.spec.kind == "fsim" and self._batch_key(other) == key:
                            other.status = "running"
                            group.append(other)
            try:
                if job.spec.kind == "run":
                    self._execute_run(job)
                else:
                    self._execute_fsim_group(group)
            except Exception as exc:  # pragma: no cover - last-resort guard
                for j in group:
                    self._finish(j, error=f"{type(exc).__name__}: {exc}")

    def _batch_key(self, job: Job) -> tuple:
        spec = job.spec
        ckey = circuit_key(spec.circuit, spec.scale, spec.seed)
        return (sim_key(ckey, spec.config), len(spec.vectors or ()))

    def _finish(self, job: Job, result: Optional[dict] = None,
                error: Optional[str] = None,
                status: Optional[str] = None) -> None:
        """Record a terminal state: ledger, counters, trace merge, wake.

        ``status`` defaults to ``done``/``failed`` from ``error``;
        pass ``"preempted"`` for a cooperative stop.  The event stream
        is completed *after* the status flip so a client that drains
        the stream to its end is guaranteed to see a terminal status on
        its next poll.
        """
        if status is None:
            status = "done" if error is None else "failed"
        event = {
            "done": "completed", "failed": "failed",
            "cancelled": "cancelled", "preempted": "preempted",
        }[status]
        record = {"event": event, "id": job.id}
        if status == "done":
            record["result"] = result
        else:
            record["error"] = error
        self.ledger.append(record)
        if self.collector.enabled:
            self.collector.inc(f"service.jobs.{event}")
        if job.spec.kind == "run":
            # A consumed stop request must not leak into a future job
            # that happens to reuse this id after recovery.
            self._stop_path(job).unlink(missing_ok=True)
        with self._cond:
            job.result = result
            job.error = error
            job.status = status
            self._cond.notify_all()
        job.collector.finish_stream()
        if self.collector.enabled:
            self.collector.merge_worker_trace(
                f"job.{job.id}", job.collector.records()
            )

    def _job_policy(self, spec: JobSpec) -> RetryPolicy:
        """Deadline/retry policy for one run job: the request's
        ``deadline_s`` beats ``REPRO_JOB_TIMEOUT`` beats no deadline;
        retries come from ``REPRO_JOB_RETRIES``."""
        return RetryPolicy.from_env(
            task_timeout=spec.deadline_s,
            timeout_env=JOB_TIMEOUT_ENV,
            retries_env=JOB_RETRIES_ENV,
            default_timeout=None,
        )

    def _execute_run(self, job: Job) -> None:
        spec = job.spec
        ckey = circuit_key(spec.circuit, spec.scale, spec.seed)
        compiled = self.registry.compiled(ckey)
        # The generator applies per-circuit overrides itself; the warm
        # registry must key on the same effective config or a deep
        # circuit's simulator would alias a shallow one's.
        config = spec.config.for_circuit(compiled.circuit.name)
        checkpoint = self._checkpoint_path(job, config)
        stop_path = self._stop_path(job)
        if self.tier is not None and not self._tier_degraded:
            task = {
                "circuit": spec.circuit,
                "scale": spec.scale,
                "seed": spec.seed,
                "config": config_to_json(config),
                "checkpoint_path": str(checkpoint),
                "stop_path": str(stop_path),
                "checkpoint_every": spec.checkpoint_every,
            }
            try:
                status, payload, records = self.tier.execute(
                    task, self._job_policy(spec)
                )
            except TierExhausted:
                # Sticky degradation: from here on every run job takes
                # the bit-identical in-thread path.  *This* job resumes
                # from whatever checkpoint its tier attempts wrote, so
                # the failed attempts' work is not lost.
                self._tier_degraded = True
            else:
                job.collector.absorb_worker_records(records)
                if status == "done":
                    self._finish(job, result=payload)
                elif status == "preempted":
                    self._finish(job, error="preempted by DELETE",
                                 status="preempted")
                else:
                    self._finish(job, error=payload)
                return
        if self._tier_degraded and self.collector.enabled:
            self.collector.inc("service.jobs.degraded")
        resume = checkpoint.exists()
        sim = self.registry.lease(ckey, config)
        try:
            try:
                result = self._run_generator(
                    job, compiled, config, sim, checkpoint, resume, stop_path
                )
            except CheckpointError as exc:
                if not resume:
                    raise
                # The checkpoint is torn or from an incompatible
                # config/circuit.  The seed is deterministic, so a
                # fresh run produces the same result the resumed one
                # would have — fall back instead of failing the job.
                # Counted on the job's collector (merged into the
                # service trace at finish), same as the tier path.
                job.collector.inc("service.jobs.resume_fallback")
                sim.reset()
                result = self._run_generator(
                    job, compiled, config, sim, checkpoint, False, stop_path
                )
        except RunPreempted:
            self.registry.release(ckey, config, sim)
            self._finish(job, error="preempted by DELETE", status="preempted")
            return
        except Exception as exc:
            self.registry.discard(sim)
            self._finish(job, error=f"{type(exc).__name__}: {exc}")
            return
        self.registry.release(ckey, config, sim)
        payload = result_to_json(result)
        payload["fault_coverage"] = result.fault_coverage
        payload["summary"] = result.summary()
        self._finish(job, result=payload)

    @staticmethod
    def _run_generator(job, compiled, config, sim, checkpoint, resume,
                       stop_path):
        generator = GaTestGenerator(
            compiled, config, collector=job.collector, fsim=sim
        )
        try:
            return generator.run(
                checkpoint_path=checkpoint,
                checkpoint_every=job.spec.checkpoint_every,
                resume=resume,
                stop=lambda: job.cancel_event.is_set() or stop_path.exists(),
            )
        finally:
            generator.close()

    def _execute_fsim_group(self, group: List[Job]) -> None:
        spec = group[0].spec
        ckey = circuit_key(spec.circuit, spec.scale, spec.seed)
        compiled = self.registry.compiled(ckey)
        n_pi = compiled.circuit.num_inputs
        bad = [
            job for job in group
            if job.spec.vectors and len(job.spec.vectors[0]) != n_pi
        ]
        for job in bad:
            self._finish(
                job,
                error=(
                    f"vectors are {len(job.spec.vectors[0])} bits wide, "
                    f"circuit {compiled.circuit.name} has {n_pi} primary inputs"
                ),
            )
        group = [job for job in group if job not in bad]
        if not group:
            return
        if self.collector.enabled and len(group) > 1:
            self.collector.inc("service.batch.passes")
            self.collector.inc("service.batch.jobs", len(group))
        sim = self.registry.lease(ckey, spec.config)
        try:
            total_faults = sim.num_faults
            with group[0].collector.span(
                "service.fsim", circuit=compiled.circuit.name, jobs=len(group)
            ):
                evals = sim.evaluate_batch([job.spec.vectors for job in group])
        except Exception as exc:
            self.registry.discard(sim)
            for job in group:
                self._finish(job, error=f"{type(exc).__name__}: {exc}")
            return
        self.registry.release(ckey, spec.config, sim)
        for job, ev in zip(group, evals):
            self._finish(
                job,
                result={
                    "circuit_name": compiled.circuit.name,
                    "detected": ev.detected,
                    "total_faults": total_faults,
                    "fault_coverage": (
                        ev.detected / total_faults if total_faults else 0.0
                    ),
                    "vectors": len(job.spec.vectors),
                },
            )

    # -- teardown ------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers (after in-flight jobs finish), tear down the
        process tier, and close the cache.

        Worker threads that outlive the join timeout are *stragglers* —
        daemon threads wedged on a job that will die with the process.
        Leaking them silently would hide a hung service from operators,
        so they are counted (``service.close.stragglers``) and the jobs
        they were running are named on stderr.
        """
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        stragglers = [t for t in self._threads if t.is_alive()]
        if stragglers:
            with self._cond:
                stuck = sorted(
                    j.id for j in self._jobs.values() if j.status == "running"
                )
            if self.collector.enabled:
                self.collector.inc("service.close.stragglers", len(stragglers))
            names = ", ".join(t.name for t in stragglers)
            jobs = ", ".join(stuck) if stuck else "none identifiable"
            print(
                f"service: close() leaked {len(stragglers)} worker "
                f"thread(s) past the {timeout:.0f}s join timeout "
                f"({names}); running job(s): {jobs}",
                file=sys.stderr,
            )
        if self.tier is not None:
            self.tier.close()
        self.registry.close()
