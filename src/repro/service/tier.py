"""Fault-isolated process execution tier for run jobs.

PR 7's :class:`~repro.service.jobs.JobManager` executed every run job on
an in-process daemon thread: a hung GA run occupied the worker forever,
and a native-kernel crash took the whole service down.  This module
moves run-job execution into a supervised worker *process* pool built
on the PR 4/5 resilience machinery:

* **Isolation** — the GA run executes in a pool worker; a crash
  (``os._exit``, segfault, OOM kill) breaks the pool, not the service.
* **Deadlines** — the parent bounds each attempt with the job's
  ``deadline_s`` (or ``REPRO_JOB_TIMEOUT``); a hung worker surfaces as
  a timeout, exactly like an evaluator shard task.
* **Self-healing** — on worker death or hang the pool is torn down hard
  (:func:`~repro.parallel.shutdown.reap_pool`), respawned lazily, and
  the attempt retried with capped exponential backoff
  (``REPRO_JOB_RETRIES`` retries).  Retries *resume from the job's own
  checkpoint*: the worker arms ``resume`` whenever the checkpoint file
  exists, so a retried job continues from its last stage boundary
  instead of restarting (``service.tier.{restarts,retries}``).
* **Chaos** — workers honor ``REPRO_CHAOS=crash:<p>,hang:<p>,seed:<n>``
  via the shared :func:`~repro.parallel.resilience.inject_chaos` hook,
  keyed on the parent's monotonic task sequence — the same
  deterministic-replay contract as evaluator shards.
* **Warm state** — each worker process keeps its own
  :class:`~repro.service.state.WarmRegistry` (compiled circuits,
  resident simulators, warm kernel caches) for its whole life, so
  repeat jobs skip recompilation exactly as in-thread execution did.
  Worker telemetry ships back per task as a *delta* trace
  (:meth:`~repro.telemetry.TelemetryCollector.records_since`) and is
  folded into the job's streaming collector by the manager.

Exhausting the retry budget raises :class:`TierExhausted`; the manager
reacts with *sticky degradation* to bit-identical in-thread execution
(the run is a pure function of (circuit, config), so where it executes
never changes what it produces — and the degraded attempt resumes from
the same checkpoint the tier attempts left behind).

Everything below the ``ProcessTier`` class must stay module-level and
import-safe: it is resolved by name inside pool worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from pathlib import Path
from typing import Optional, Tuple

from ..core.checkpoint import CheckpointError
from ..core.generator import GaTestGenerator, RunPreempted
from ..harness.campaign import result_to_json
from ..harness.distributed import config_from_json
from ..parallel.resilience import CHAOS_ENV, ChaosConfig, RetryPolicy, inject_chaos
from ..parallel.shutdown import reap_pool
from ..telemetry import NullCollector, TelemetryCollector, get_collector
from .state import WarmRegistry, circuit_key


class TierExhausted(Exception):
    """The process tier could not complete a task within its retry
    budget (or could not create a pool at all).  The manager's response
    is sticky degradation to in-thread execution."""


#: One tier task outcome: ``("done", result_payload)``, ``("preempted",
#: None)`` or ``("error", message)``, plus the worker's shipped trace.
TierOutcome = Tuple[str, Optional[object], list]


# ----------------------------------------------------------------------
# Worker side (runs inside pool processes)
# ----------------------------------------------------------------------

#: The worker-resident warm registry (one per pool process).
_REGISTRY: Optional[WarmRegistry] = None

#: The worker's life-long collector; tasks ship per-task deltas.
_COLLECTOR: Optional[TelemetryCollector] = None

#: Chaos injection config (parsed from ``REPRO_CHAOS`` at pool init).
_CHAOS: Optional[ChaosConfig] = None


def init_tier_worker(chaos_spec: str = "") -> None:
    """Pool initializer: build this process's registry and collector.

    The chaos spec travels as an *argument*, not via ``REPRO_CHAOS``:
    tier workers fork from the forkserver process, whose environment is
    frozen at its first start — the parent re-reads the env at each
    pool creation and ships the current spec explicitly.
    """
    global _REGISTRY, _COLLECTOR, _CHAOS
    _COLLECTOR = TelemetryCollector(source="repro.service.tier")
    _REGISTRY = WarmRegistry(collector=_COLLECTOR)
    chaos = ChaosConfig.parse(chaos_spec) if chaos_spec else None
    _CHAOS = chaos if chaos is not None and chaos.enabled else None


def run_tier_job(task: dict, task_seq: int = 0) -> TierOutcome:
    """Execute one run job in this worker process.

    ``task`` carries the circuit spec, the *effective* (per-circuit)
    config as :func:`~repro.harness.distributed.config_to_json` wire
    format, the checkpoint path, the stop-file path and the checkpoint
    interval.  Application failures are returned as ``("error", …)``
    outcomes — they are deterministic, retrying cannot help, and the
    parent must not confuse them with infrastructure failures (which
    surface as a broken pool or a timeout and *are* retried).
    """
    inject_chaos(_CHAOS, task_seq)
    if _REGISTRY is None or _COLLECTOR is None:  # pragma: no cover - defensive
        raise RuntimeError("tier worker used before init_tier_worker")
    collector = _COLLECTOR
    marker = collector.mark()
    checkpoint = Path(task["checkpoint_path"])
    stop_path = Path(task["stop_path"])
    try:
        config = config_from_json(task["config"])
        ckey = circuit_key(task["circuit"], task["scale"], task["seed"])
        compiled = _REGISTRY.compiled(ckey)
        config = config.for_circuit(compiled.circuit.name)  # idempotent
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}",
                collector.records_since(marker))
    resume = checkpoint.exists()
    sim = _REGISTRY.lease(ckey, config)
    try:
        try:
            result = _run_generator(
                compiled, config, sim, collector, checkpoint,
                task["checkpoint_every"], resume, stop_path,
            )
        except CheckpointError:
            if not resume:
                raise
            # The checkpoint is torn or incompatible.  The seed is
            # deterministic, so a fresh run produces the same result
            # the resumed one would have — fall back instead of
            # failing the job (mirrors the in-thread path).
            collector.inc("service.jobs.resume_fallback")
            sim.reset()
            result = _run_generator(
                compiled, config, sim, collector, checkpoint,
                task["checkpoint_every"], False, stop_path,
            )
    except RunPreempted:
        _REGISTRY.release(ckey, config, sim)
        return ("preempted", None, collector.records_since(marker))
    except Exception as exc:
        _REGISTRY.discard(sim)
        return ("error", f"{type(exc).__name__}: {exc}",
                collector.records_since(marker))
    _REGISTRY.release(ckey, config, sim)
    payload = result_to_json(result)
    payload["fault_coverage"] = result.fault_coverage
    payload["summary"] = result.summary()
    return ("done", payload, collector.records_since(marker))


def _run_generator(
    compiled, config, sim, collector, checkpoint, checkpoint_every,
    resume, stop_path,
):
    generator = GaTestGenerator(
        compiled, config, collector=collector, fsim=sim
    )
    try:
        return generator.run(
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            stop=stop_path.exists,
        )
    finally:
        generator.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class ProcessTier:
    """Supervised process pool executing run jobs with deadline + retry.

    The pool is created lazily on first use and torn down hard
    (:func:`~repro.parallel.shutdown.reap_pool`) whenever an attempt
    times out or the pool breaks — a wedged worker is terminated, never
    joined.  ``execute`` retries up to ``policy.max_retries`` times
    (respawning first, backing off between attempts) and raises
    :class:`TierExhausted` when the budget is spent or no pool can be
    created in this environment.
    """

    def __init__(
        self,
        collector: Optional[NullCollector] = None,
        max_workers: int = 2,
    ) -> None:
        self.collector = collector if collector is not None else get_collector()
        self.max_workers = max(1, max_workers)
        self._lock = threading.Lock()
        self._pool = None
        self._unsupported = False  # this environment cannot fork pools
        self._task_seq = 0
        self.restarts = 0
        self.retries = 0

    def _get_pool(self):
        """The worker pool (created on first use); ``None`` when the
        environment has no process support.

        Workers come from a **forkserver** context, not plain fork: the
        service is heavily threaded (job workers, the asyncio HTTP
        loop), and forking a threaded process can deadlock the child on
        locks frozen mid-acquire — worse, fork children inherit every
        open fd, including accepted HTTP sockets, so a long-lived
        worker would hold a client's event stream open past the
        server's close.  The forkserver process is exec'd fresh
        (single-threaded, no inherited sockets) and workers fork from
        *it*, so neither failure class exists.
        """
        with self._lock:
            if self._pool is None and not self._unsupported:
                try:
                    from concurrent.futures import ProcessPoolExecutor

                    ctx = multiprocessing.get_context("forkserver")
                    # Warm the server with the tier module so per-pool
                    # worker forks skip the import bill (best-effort;
                    # ignored once the server is running).
                    ctx.set_forkserver_preload(["repro.service.tier"])
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        mp_context=ctx,
                        initializer=init_tier_worker,
                        initargs=(os.environ.get(CHAOS_ENV, ""),),
                    )
                except (OSError, ValueError):
                    self._unsupported = True
            return self._pool

    def _restart(self) -> None:
        """Kill the (suspect) pool; the next attempt respawns it."""
        with self._lock:
            pool, self._pool = self._pool, None
        reap_pool(pool)
        self.restarts += 1
        if self.collector.enabled:
            self.collector.inc("service.tier.restarts")

    def execute(self, task: dict, policy: RetryPolicy) -> TierOutcome:
        """Run one tier task to an outcome, healing infrastructure
        failures along the way.

        Each attempt is bounded by ``policy.task_timeout`` (the job's
        deadline); a timeout or a broken pool kills the pool, counts a
        restart, backs off, and retries — and because the worker arms
        ``resume`` off the checkpoint file, the retry continues the run
        rather than restarting it.  Raises :class:`TierExhausted` after
        ``policy.max_retries`` failed retries.
        """
        attempt = 0
        while True:
            pool = self._get_pool()
            if pool is None:
                raise TierExhausted(
                    "process tier unavailable: this environment cannot "
                    "create worker processes"
                )
            with self._lock:
                self._task_seq += 1
                seq = self._task_seq
            future = None
            try:
                future = pool.submit(run_tier_job, task, seq)
                return future.result(timeout=policy.task_timeout)
            except Exception:
                # Infrastructure failure: the worker died (broken
                # pool), hung past the deadline, or the pool rejected
                # the submit.  Application failures never raise — the
                # worker returns them as ("error", …) outcomes.
                self._restart()
            if attempt >= policy.max_retries:
                raise TierExhausted(
                    f"tier task failed after {attempt + 1} attempt(s) "
                    f"({policy.max_retries} retries)"
                )
            self.retries += 1
            if self.collector.enabled:
                self.collector.inc("service.tier.retries")
            time.sleep(policy.backoff(attempt))
            attempt += 1

    def stats(self) -> dict:
        """Pool counters for ``GET /healthz``."""
        with self._lock:
            live = self._pool is not None
        return {
            "workers": self.max_workers,
            "live": live,
            "restarts": self.restarts,
            "retries": self.retries,
        }

    def close(self) -> None:
        """Tear the pool down hard (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        reap_pool(pool)
