"""Service assembly and lifecycle: what ``gatest serve`` runs.

:func:`serve` wires the pieces together — service-level
:class:`~repro.telemetry.TelemetryCollector`, ledger/checkpoint state
directory, :class:`~repro.service.jobs.JobManager`,
:class:`~repro.service.http.ServiceServer` — and blocks until a
graceful shutdown is requested by ``POST /shutdown`` or by SIGTERM /
SIGINT.  On shutdown, in-flight jobs drain, resident simulators close
(no orphaned worker processes), and queued jobs stay in the ledger for
the next start to recover.

The "listening on" line is printed only after the socket is bound, with
the *actual* port — ``--port 0`` asks the OS for an ephemeral port, and
tests/scripts parse the line to find it.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import tempfile
from pathlib import Path
from typing import Optional

from ..telemetry import TelemetryCollector
from .http import ServiceServer
from .jobs import JobManager, workers_from_env


def serve(
    host: str = "127.0.0.1",
    port: int = 8337,
    state_dir: Optional[str] = None,
    workers: Optional[int] = None,
    cache_size: Optional[int] = None,
    queue_max: Optional[int] = None,
    use_tier: bool = True,
) -> int:
    """Run the service until shutdown; returns a process exit status.

    With ``state_dir=None`` a throwaway directory is used: no recovery
    across restarts, but also no litter.  Pass a real directory to get
    the ledger/checkpoint/recovery behaviour described in
    docs/SERVICE.md.  ``queue_max`` bounds the queued-job count
    (``None``: ``REPRO_SERVICE_QUEUE_MAX``, unset = unbounded);
    ``use_tier=False`` keeps run jobs in-thread (no process isolation —
    a debugging escape hatch, results are bit-identical either way).
    """
    collector = TelemetryCollector(source="repro.service")
    if state_dir is None:
        scratch = tempfile.TemporaryDirectory(prefix="gatest-service-")
        state_path = Path(scratch.name)
    else:
        scratch = None
        state_path = Path(state_dir)
        state_path.mkdir(parents=True, exist_ok=True)
    manager = JobManager(
        state_path,
        collector=collector,
        workers=workers if workers is not None else workers_from_env(),
        cache_size=cache_size,
        queue_max=queue_max,
        use_tier=use_tier,
    )
    try:
        asyncio.run(_serve_async(manager, host, port))
    except KeyboardInterrupt:
        manager.close()
    finally:
        if scratch is not None:
            scratch.cleanup()
    return 0


async def _serve_async(manager: JobManager, host: str, port: int) -> None:
    server = ServiceServer(manager, host=host, port=port)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.shutdown_requested.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread or platform without signal support
    print(
        f"gatest-service listening on http://{server.host}:{server.port} "
        f"(state: {manager.state_dir})",
        flush=True,
    )
    await server.serve_until_shutdown()
    print("gatest-service: shut down cleanly", file=sys.stderr, flush=True)
