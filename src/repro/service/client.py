"""A thin stdlib client for the job service (``http.client`` only).

Mirrors the API in docs/SERVICE.md one method per endpoint, plus two
conveniences (:meth:`ServiceClient.wait` polls a job to a terminal
state; :meth:`ServiceClient.events` iterates the live telemetry
stream).  Raises :class:`ServiceError` carrying the HTTP status and the
server's ``error`` message on any non-200 response — except ``429``
(queue full), which raises the typed :class:`ServiceBusyError` with the
server's ``Retry-After`` hint so callers can implement load-aware
backoff instead of string-matching an error.

**Transient connection errors are retried** with capped exponential
backoff (:class:`~repro.parallel.resilience.RetryPolicy` semantics —
same base/factor/cap as the worker pools): a service that is restarting,
or a connection the kernel reset under load, is indistinguishable from
a lost request, and *retrying a submission is safe* because the service
coalesces identical in-flight requests by canonical payload digest —
a resubmitted ``POST /jobs`` lands on the job the first attempt
created, never a duplicate run.  Only connection-level failures are
retried; HTTP error responses (including 429) are the server speaking
and are surfaced immediately.

>>> client = ServiceClient("127.0.0.1", 8337)          # doctest: +SKIP
>>> job = client.submit({"kind": "run", "circuit": "s27",
...                      "config": {"seed": 1}})       # doctest: +SKIP
>>> done = client.wait(job["id"])                      # doctest: +SKIP
>>> done["result"]["fault_coverage"] > 0.5             # doctest: +SKIP
True
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, List, Optional

from ..parallel.resilience import RetryPolicy

#: Connection attempts per request (the request itself plus retries).
DEFAULT_CONNECT_RETRIES = 3


class ServiceError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceBusyError(ServiceError):
    """``429 Too Many Requests``: admission control rejected the
    submission before anything was ledgered.  ``retry_after`` is the
    server's ``Retry-After`` hint in seconds; resubmitting the same
    payload after waiting is safe (and, if the job was accepted on a
    racing attempt, coalesces onto it)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = retry_after


class ServiceClient:
    """One service endpoint; a fresh connection per request.

    ``retries`` bounds how many times a *connection-level* failure
    (refused, reset, timed out socket) is retried with the
    :class:`RetryPolicy` backoff schedule before the error propagates.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8337,
                 timeout: float = 60.0,
                 retries: int = DEFAULT_CONNECT_RETRIES) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = RetryPolicy(
            max_retries=max(0, retries), task_timeout=None
        )

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        attempt = 0
        while True:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = json.loads(response.read() or b"{}")
                if response.status == 429:
                    raise ServiceBusyError(
                        data.get("error", "queue is full"),
                        retry_after=float(
                            response.getheader("Retry-After") or 1
                        ),
                    )
                if response.status != 200:
                    raise ServiceError(
                        response.status, data.get("error", "unknown error")
                    )
                return data
            except OSError:
                # Transport failure (refused/reset/timed out socket),
                # not a server answer — HTTP errors raise ServiceError
                # above and are never retried here.  Digest coalescing
                # makes re-POSTing idempotent, so every method is safe
                # to retry.
                if attempt >= self.retry_policy.max_retries:
                    raise
                time.sleep(self.retry_policy.backoff(attempt))
                attempt += 1
            finally:
                conn.close()

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz``: status, job/queue/tier/cache stats, counters."""
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """``POST /jobs``: submit a run/fsim job; returns the job record.

        Raises :class:`ServiceBusyError` when the queue is full — wait
        ``retry_after`` seconds and resubmit (idempotent: an identical
        in-flight job absorbs the retry via digest coalescing).
        """
        return self._request("POST", "/jobs", body=spec)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: one job's status and (if done) result."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        """``GET /jobs``: every job the service knows, oldest first."""
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/<id>``: cancel a queued job immediately or
        preempt a running run job at its next stage boundary.

        Returns ``{"id", "status"}`` — ``status`` may still be
        ``running`` for a preemption in flight; poll :meth:`job` (or
        :meth:`wait`) for the terminal ``preempted`` state.  Idempotent
        on terminal jobs.
        """
        return self._request("DELETE", f"/jobs/{job_id}")

    def shutdown(self) -> dict:
        """``POST /shutdown``: graceful stop (in-flight jobs drain)."""
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state
        (``done``/``failed``/``cancelled``/``preempted``); returns the
        record.  Raises :class:`TimeoutError` if the deadline passes
        first.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed", "cancelled", "preempted"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict]:
        """``GET /jobs/<id>/events``: yield telemetry records live.

        The iterator ends when the job's trace is complete (the server
        closes the stream).  Collecting it yields a full schema-valid
        trace: ``meta`` first, events in order, counter finals last.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                data = json.loads(response.read() or b"{}")
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
            if buffer.strip():
                yield json.loads(buffer)
        finally:
            conn.close()
