"""A thin stdlib client for the job service (``http.client`` only).

Mirrors the API in docs/SERVICE.md one method per endpoint, plus two
conveniences (:meth:`ServiceClient.wait` polls a job to a terminal
state; :meth:`ServiceClient.events` iterates the live telemetry
stream).  Raises :class:`ServiceError` carrying the HTTP status and the
server's ``error`` message on any non-200 response.

>>> client = ServiceClient("127.0.0.1", 8337)          # doctest: +SKIP
>>> job = client.submit({"kind": "run", "circuit": "s27",
...                      "config": {"seed": 1}})       # doctest: +SKIP
>>> done = client.wait(job["id"])                      # doctest: +SKIP
>>> done["result"]["fault_coverage"] > 0.5             # doctest: +SKIP
True
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, List, Optional


class ServiceError(RuntimeError):
    """A non-200 response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One service endpoint; a fresh connection per request."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8337,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status != 200:
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            return data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz``: status, job counts, cache stats, counters."""
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """``POST /jobs``: submit a run/fsim job; returns the job record."""
        return self._request("POST", "/jobs", body=spec)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: one job's status and (if done) result."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[dict]:
        """``GET /jobs``: every job the service knows, oldest first."""
        return self._request("GET", "/jobs")["jobs"]

    def shutdown(self) -> dict:
        """``POST /shutdown``: graceful stop (in-flight jobs drain)."""
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is ``done``/``failed``; returns the record.

        Raises :class:`TimeoutError` if the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']} after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[dict]:
        """``GET /jobs/<id>/events``: yield telemetry records live.

        The iterator ends when the job's trace is complete (the server
        closes the stream).  Collecting it yields a full schema-valid
        trace: ``meta`` first, events in order, counter finals last.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                data = json.loads(response.read() or b"{}")
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
            if buffer.strip():
                yield json.loads(buffer)
        finally:
            conn.close()
