"""A minimal asyncio HTTP/1.1 front for the job manager.

Standard library only (``asyncio.start_server`` plus hand-rolled
request parsing) — the service adds **no dependencies** to the package.
The protocol subset is deliberately small and documented in
docs/SERVICE.md:

* one request per connection, ``Connection: close`` on every response;
* JSON request and response bodies (``Content-Length`` framed);
* the event stream (``GET /jobs/<id>/events``) is close-delimited
  ``application/x-ndjson``: one telemetry record per line, written as
  the job produces them, connection closed when the trace is complete.

Blocking manager calls (job submission compiles circuits; event reads
wait on a condition) run in worker threads via ``asyncio.to_thread`` so
one slow request never stalls the accept loop.

Routes::

    GET    /healthz            liveness + job/queue/cache/tier stats + counters
    POST   /jobs               submit a job (docs/SERVICE.md schema)
    GET    /jobs               all jobs, oldest first
    GET    /jobs/<id>          one job's status/result
    DELETE /jobs/<id>          cancel a queued job / preempt a running run
    GET    /jobs/<id>/events   live telemetry stream (ndjson)
    POST   /shutdown           graceful stop (drains in-flight jobs)

Error codes: 400 (bad JSON / bad spec / unknown circuit), 404 (unknown
job or path), 405 (bad method), 413 (oversized body), 429 (queue full
— carries a ``Retry-After`` header, and nothing was ledgered), 500
(handler bug).  Every error body is ``{"error": "<message>"}``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from .jobs import JobManager, JobValidationError, QueueFullError

#: Largest accepted request body (a big fsim vector file is ~MBs).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Reason phrases for the status codes this server emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class HttpError(Exception):
    """Terminate a request with ``status`` and a JSON error body.

    ``headers`` are extra response headers (the 429 path carries
    ``Retry-After`` so well-behaved clients back off instead of
    hammering a saturated queue).
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


def _response_bytes(status: int, body: dict,
                    headers: Optional[Dict[str, str]] = None) -> bytes:
    payload = json.dumps(body).encode()
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extra}"
        f"Connection: close\r\n"
        f"\r\n"
    ).encode()
    return head + payload


class ServiceServer:
    """Bind, serve, and tear down the HTTP front over one JobManager."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.manager = manager
        self.host = host
        self.port = port          # 0 = ephemeral; real port set by start()
        self.shutdown_requested = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind the listening socket and record the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until :attr:`shutdown_requested` is set, then drain."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self.shutdown_requested.wait()
        # In-flight jobs finish; queued jobs stay ledgered for the next
        # start (the recovery path picks them up).
        await asyncio.to_thread(self.manager.close)

    # -- request plumbing ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                await self._route(method, path, body, writer)
            except HttpError as exc:
                writer.write(
                    _response_bytes(
                        exc.status, {"error": exc.message}, exc.headers
                    )
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # pragma: no cover - handler bug guard
                writer.write(
                    _response_bytes(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[dict]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body: Optional[dict] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise HttpError(400, f"request body is not valid JSON: {exc}")
        return method, target.split("?", 1)[0], body

    # -- routing -------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: Optional[dict],
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/healthz":
            self._require_method(method, "GET")
            writer.write(_response_bytes(200, self._healthz()))
            return
        if path == "/shutdown":
            self._require_method(method, "POST")
            writer.write(_response_bytes(200, {"status": "shutting-down"}))
            await writer.drain()
            self.shutdown_requested.set()
            return
        if path == "/jobs":
            if method == "POST":
                job, coalesced = await asyncio.to_thread(self._submit, body)
                response = job.to_json()
                response["coalesced_onto"] = coalesced
                writer.write(_response_bytes(200, response))
                return
            self._require_method(method, "GET")
            writer.write(
                _response_bytes(
                    200, {"jobs": [j.to_json() for j in self.manager.jobs()]}
                )
            )
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                self._require_method(method, "GET")
                await self._stream_events(rest[: -len("/events")].rstrip("/"), writer)
                return
            if method == "DELETE":
                status = await asyncio.to_thread(self.manager.cancel, rest)
                if status is None:
                    raise HttpError(404, f"no such job: {rest!r}")
                writer.write(
                    _response_bytes(200, {"id": rest, "status": status})
                )
                return
            self._require_method(method, "GET")
            job = self.manager.get(rest)
            if job is None:
                raise HttpError(404, f"no such job: {rest!r}")
            writer.write(_response_bytes(200, job.to_json()))
            return
        raise HttpError(404, f"no such endpoint: {path!r}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected}")

    def _submit(self, body: Optional[dict]):
        if body is None:
            raise HttpError(400, "POST /jobs requires a JSON body")
        try:
            return self.manager.submit(body)
        except JobValidationError as exc:
            raise HttpError(400, str(exc))
        except QueueFullError as exc:
            raise HttpError(
                429, str(exc),
                headers={"Retry-After": str(exc.retry_after)},
            )

    def _healthz(self) -> dict:
        counters = {}
        if self.manager.collector.enabled:
            counters = self.manager.collector.counters
        return {
            "status": "ok",
            "jobs": self.manager.stats(),
            "queue": self.manager.queue_stats(),
            "tier": self.manager.tier_stats(),
            "cache": self.manager.registry.stats(),
            "counters": counters,
        }

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id!r}")
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode()
        )
        position = 0
        while True:
            records, done = await asyncio.to_thread(
                job.collector.stream_read, position, 0.5
            )
            for record in records:
                writer.write((json.dumps(record) + "\n").encode())
            position += len(records)
            if records:
                await writer.drain()
            if done:
                return
