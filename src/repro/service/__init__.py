"""ATPG-as-a-service: a persistent job API over the GATEST stack.

``gatest run`` pays the full cold-start bill — parse/synthesize,
levelize, compile, build a simulation kernel, spin up worker pools —
on every invocation, then throws it all away.  This package keeps that
state **warm** in a long-lived process behind a small HTTP API
(stdlib-only; see docs/SERVICE.md for the full reference):

* :mod:`~repro.service.state` — keyed LRU registry of compiled
  circuits and leased resident fault simulators;
* :mod:`~repro.service.jobs` — job validation/queue/worker pool,
  request coalescing, shared wide-word fsim batching, the sealed job
  ledger, and checkpoint-backed crash recovery;
* :mod:`~repro.service.http` — the asyncio HTTP front
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/events``,
  ``GET /healthz``, ``POST /shutdown``);
* :mod:`~repro.service.client` — :class:`ServiceClient`, a thin
  ``http.client`` wrapper;
* :mod:`~repro.service.app` — :func:`serve`, the ``gatest serve``
  entry point.

Every result is bit-identical to the equivalent one-shot CLI run: jobs
are deterministic functions of (circuit spec, config), warm simulators
are reset to power-up before reuse, and recovery resumes through the
PR 4 run-checkpoint contract.
"""

from .app import serve
from .client import ServiceClient, ServiceError
from .http import ServiceServer
from .jobs import (
    Job,
    JobLedger,
    JobManager,
    JobSpec,
    JobValidationError,
    StreamingCollector,
    parse_job,
)
from .state import WarmRegistry, circuit_key, sim_key

__all__ = [
    "Job",
    "JobLedger",
    "JobManager",
    "JobSpec",
    "JobValidationError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "StreamingCollector",
    "WarmRegistry",
    "circuit_key",
    "parse_job",
    "serve",
    "sim_key",
]
