"""ATPG-as-a-service: a persistent job API over the GATEST stack.

``gatest run`` pays the full cold-start bill — parse/synthesize,
levelize, compile, build a simulation kernel, spin up worker pools —
on every invocation, then throws it all away.  This package keeps that
state **warm** in a long-lived process behind a small HTTP API
(stdlib-only; see docs/SERVICE.md for the full reference):

* :mod:`~repro.service.state` — keyed LRU registry of compiled
  circuits and leased resident fault simulators;
* :mod:`~repro.service.jobs` — job validation/priority queue/worker
  pool, request coalescing, shared wide-word fsim batching, admission
  control, cancellation/preemption, the sealed job ledger, and
  checkpoint-backed crash recovery;
* :mod:`~repro.service.tier` — the fault-isolated process execution
  tier for run jobs (deadlines, checkpoint-resuming retries, chaos
  hooks, sticky in-thread degradation);
* :mod:`~repro.service.http` — the asyncio HTTP front
  (``POST /jobs``, ``GET /jobs/<id>``, ``DELETE /jobs/<id>``,
  ``GET /jobs/<id>/events``, ``GET /healthz``, ``POST /shutdown``);
* :mod:`~repro.service.client` — :class:`ServiceClient`, a thin
  ``http.client`` wrapper with transient-connection retry;
* :mod:`~repro.service.app` — :func:`serve`, the ``gatest serve``
  entry point.

Every result is bit-identical to the equivalent one-shot CLI run: jobs
are deterministic functions of (circuit spec, config), warm simulators
are reset to power-up before reuse, and recovery resumes through the
PR 4 run-checkpoint contract.
"""

from .app import serve
from .client import ServiceBusyError, ServiceClient, ServiceError
from .http import ServiceServer
from .jobs import (
    Job,
    JobLedger,
    JobManager,
    JobSpec,
    JobValidationError,
    QueueFullError,
    StreamingCollector,
    parse_job,
    run_key,
)
from .state import WarmRegistry, circuit_key, sim_key
from .tier import ProcessTier, TierExhausted

__all__ = [
    "Job",
    "JobLedger",
    "JobManager",
    "JobSpec",
    "JobValidationError",
    "ProcessTier",
    "QueueFullError",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "StreamingCollector",
    "TierExhausted",
    "WarmRegistry",
    "circuit_key",
    "parse_job",
    "run_key",
    "serve",
    "sim_key",
]
