"""Warm-state registry: compiled circuits and resident fault simulators.

The whole point of running ATPG as a resident service instead of a
fresh ``gatest`` process per request is that the expensive, run-invariant
work — parsing/synthesizing the circuit, levelizing and compiling it,
building the simulation kernel (:func:`repro.sim.codegen.kernel_for`),
and spinning up ``eval_jobs`` worker pools — happens once and is reused
by every later job that asks for the same thing.  This module is that
reuse: a keyed, LRU-evicting registry of

* **compiled circuits**, keyed by ``(spec, scale, seed)`` — the exact
  inputs :func:`repro.circuit.library.resolve_spec` resolves, so two
  jobs naming the same circuit share one :class:`CompiledCircuit`
  object.  Kernels are cached per compiled-circuit *object* inside
  :mod:`repro.sim.codegen`, so keeping the object resident is what
  makes repeat requests skip kernel compilation (the
  ``codegen.kernels.built`` / ``numpy.plan.built`` counters stay flat).
* **fault simulators**, keyed by the circuit key plus every
  config field that shapes the simulator (fault model, word width,
  kernel, eval parallelism/cache/resilience — the same fields
  :func:`repro.core.generator.make_fault_simulator` consumes).  A
  resident simulator keeps its parallel evaluator's worker pool warm
  across jobs.

Simulators are handed out under a **lease**: :meth:`WarmRegistry.lease`
removes the entry from the registry (exclusive use — two jobs never
share one mutable simulator), and :meth:`WarmRegistry.release` resets
it to power-up state and puts it back.  A concurrent job that misses
because the entry is out on lease simply builds its own; whichever
returns last wins the registry slot, the other is closed.  Stale-cache
bugs are prevented structurally: any config change that would alter the
simulator lands in the key, so it can only miss, never alias (see
docs/ROBUSTNESS.md §5).

Counters (on the registry's collector, surfaced via ``GET /healthz``):
``service.cache.hits``, ``service.cache.misses``,
``service.cache.evictions``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..circuit.library import resolve_spec
from ..core.config import TestGenConfig
from ..core.generator import make_fault_simulator
from ..parallel.shutdown import close_quietly
from ..sim.compile import CompiledCircuit, compile_circuit
from ..telemetry import NullCollector, get_collector

#: Environment knob: max resident simulators (compiled circuits follow).
CACHE_SIZE_ENV = "REPRO_SERVICE_CACHE_SIZE"

#: Default maximum number of resident simulators.
DEFAULT_CACHE_SIZE = 8

#: (spec, scale, seed) — everything circuit resolution depends on.
CircuitKey = Tuple[str, float, int]


def circuit_key(spec: str, scale: float, seed: int) -> CircuitKey:
    """The registry key for one resolvable circuit.

    ``seed`` (and ``scale``) only influence resolution for synthesized
    ISCAS89 profile names; a ``.bench`` path or builtin name resolves to
    the same circuit regardless, so those keys canonicalize seed/scale
    away — a seed-7 run job on ``s27`` warm-hits the simulator a seed-1
    job left behind.
    """
    from pathlib import Path

    from ..circuit.library import list_builtin

    path = Path(spec)
    if (path.suffix == ".bench" and path.exists()) or spec in list_builtin():
        return (spec, 1.0, 0)
    return (spec, float(scale), int(seed))


def sim_key(ckey: CircuitKey, config: TestGenConfig) -> tuple:
    """The registry key for one resident simulator.

    Covers every :class:`TestGenConfig` field that
    :func:`~repro.core.generator.make_fault_simulator` reads — a config
    change that would produce a different simulator produces a
    different key, so a warm entry can never be served stale.
    """
    return (
        ckey,
        config.fault_model,
        config.word_width,
        config.sim_kernel,
        config.eval_jobs,
        config.eval_cache,
        config.eval_task_timeout,
        config.eval_retries,
    )


def cache_size_from_env(default: int = DEFAULT_CACHE_SIZE) -> int:
    """Resolve the registry capacity from :data:`CACHE_SIZE_ENV`."""
    raw = os.environ.get(CACHE_SIZE_ENV, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(1, value)


class WarmRegistry:
    """Thread-safe LRU cache of compiled circuits and leased simulators."""

    def __init__(
        self,
        collector: Optional[NullCollector] = None,
        max_sims: Optional[int] = None,
    ) -> None:
        self.collector = collector if collector is not None else get_collector()
        self.max_sims = max_sims if max_sims is not None else cache_size_from_env()
        self._lock = threading.Lock()
        self._circuits: "OrderedDict[CircuitKey, CompiledCircuit]" = OrderedDict()
        self._sims: "OrderedDict[tuple, object]" = OrderedDict()

    # ------------------------------------------------------------------
    # Compiled circuits
    # ------------------------------------------------------------------

    def compiled(self, ckey: CircuitKey) -> CompiledCircuit:
        """The compiled circuit for ``ckey``, parsing/compiling on miss.

        Raises :class:`ValueError` for an unresolvable spec (the HTTP
        layer maps that to a 400).
        """
        with self._lock:
            cached = self._circuits.get(ckey)
            if cached is not None:
                self._circuits.move_to_end(ckey)
                return cached
        # Resolve outside the lock: synthesis/compilation can be slow.
        spec, scale, seed = ckey
        compiled = compile_circuit(resolve_spec(spec, scale=scale, seed=seed))
        with self._lock:
            # A racing thread may have resolved the same key; keep the
            # first object so kernel caches (keyed by object identity)
            # converge on one CompiledCircuit per key.
            existing = self._circuits.get(ckey)
            if existing is not None:
                return existing
            self._circuits[ckey] = compiled
            while len(self._circuits) > self.max_sims:
                self._circuits.popitem(last=False)
            return compiled

    # ------------------------------------------------------------------
    # Resident simulators
    # ------------------------------------------------------------------

    def lease(self, ckey: CircuitKey, config: TestGenConfig):
        """Lease a simulator for ``(ckey, config)``, building on miss.

        The returned simulator is at power-up state and exclusively
        owned by the caller until :meth:`release` (or :meth:`discard`).
        Simulator-side telemetry (kernel builds, simulated frames,
        cache traffic) lands on the registry's collector, which owns
        the simulator's lifetime; per-job collectors only see
        generator-side records.
        """
        skey = sim_key(ckey, config)
        with self._lock:
            sim = self._sims.pop(skey, None)
        if sim is not None:
            if self.collector.enabled:
                self.collector.inc("service.cache.hits")
            return sim
        if self.collector.enabled:
            self.collector.inc("service.cache.misses")
        compiled = self.compiled(ckey)
        return make_fault_simulator(compiled, config, collector=self.collector)

    def release(self, ckey: CircuitKey, config: TestGenConfig, sim) -> None:
        """Return a leased simulator to the registry, reset to power-up.

        If the slot was refilled by a racing job (or capacity forces an
        eviction), the loser is closed — worker pools never leak.
        """
        skey = sim_key(ckey, config)
        try:
            sim.reset()
        except Exception:
            # A simulator that cannot reset is not safe to reuse.
            close_quietly(sim)
            return
        evicted = []
        with self._lock:
            if skey in self._sims:
                evicted.append(sim)  # racing release won the slot
            else:
                self._sims[skey] = sim
                self._sims.move_to_end(skey)
            while len(self._sims) > self.max_sims:
                _, old = self._sims.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            if self.collector.enabled:
                self.collector.inc("service.cache.evictions")
            close_quietly(old)

    def discard(self, sim) -> None:
        """Close a leased simulator instead of returning it (failed job)."""
        close_quietly(sim)

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Resident-entry counts for ``GET /healthz``."""
        with self._lock:
            return {
                "circuits": len(self._circuits),
                "sims": len(self._sims),
                "capacity": self.max_sims,
            }

    def close(self) -> None:
        """Close every resident simulator (service shutdown)."""
        with self._lock:
            sims = list(self._sims.values())
            self._sims.clear()
            self._circuits.clear()
        for sim in sims:
            close_quietly(sim)
