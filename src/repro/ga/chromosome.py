"""Chromosome codings for test vectors and test sequences (paper §III-A).

During *vector* generation each chromosome position maps to one primary
input — a plain binary string.  During *sequence* generation the paper
studies two codings:

* **binary** — the sequence's vectors are packed end to end into one
  binary string; the ordinary bitwise crossover/mutation operators apply;
* **nonbinary** — each of the 2^L possible vectors is one character of a
  large alphabet, so a chromosome is a string of ``seq_len`` characters.
  Crossover may only cut at vector boundaries and mutation replaces a
  whole vector with a fresh random one.

Both codings decode to the same phenotype: a list of time-frame vectors
(bit lists, one bit per PI), which is what the fault simulator consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

Chromosome = List[int]
Phenotype = List[List[int]]  # list of vectors, each a list of 0/1 per PI


@dataclass(frozen=True)
class BinaryCoding:
    """Bit-string coding: one gene per (frame, PI) pair."""

    n_pi: int
    seq_len: int = 1

    def __post_init__(self) -> None:
        if self.n_pi < 1 or self.seq_len < 1:
            raise ValueError("n_pi and seq_len must be positive")

    @property
    def length(self) -> int:
        """Chromosome length in genes (= bits)."""
        return self.n_pi * self.seq_len

    @property
    def vector_length(self) -> int:
        """Bits per time-frame vector."""
        return self.n_pi

    def random(self, rng: random.Random) -> Chromosome:
        """A fresh uniformly random chromosome."""
        return [rng.randint(0, 1) for _ in range(self.length)]

    def decode(self, chromosome: Sequence[int]) -> Phenotype:
        """Split the bit string into per-frame vectors."""
        if len(chromosome) != self.length:
            raise ValueError(
                f"chromosome length {len(chromosome)} != coding length {self.length}"
            )
        n = self.n_pi
        return [list(chromosome[i * n:(i + 1) * n]) for i in range(self.seq_len)]

    def mutate_gene(self, gene: int, rng: random.Random) -> int:
        """Point mutation: flip the bit."""
        return gene ^ 1


@dataclass(frozen=True)
class NonbinaryCoding:
    """Vector-alphabet coding: one gene per time frame.

    A gene is an integer in ``[0, 2**n_pi)`` whose bits are the PI values
    of that frame (bit *j* drives PI *j*).  The alphabet therefore has
    2^L characters as in the paper; genes are kept as ints so equality
    and replacement are cheap.
    """

    n_pi: int
    seq_len: int = 1

    def __post_init__(self) -> None:
        if self.n_pi < 1 or self.seq_len < 1:
            raise ValueError("n_pi and seq_len must be positive")

    @property
    def length(self) -> int:
        """Chromosome length in genes (= time frames)."""
        return self.seq_len

    @property
    def vector_length(self) -> int:
        """Bits per time-frame vector."""
        return self.n_pi

    def random(self, rng: random.Random) -> Chromosome:
        """A fresh uniformly random chromosome (one gene per frame)."""
        top = (1 << self.n_pi) - 1
        return [rng.randint(0, top) for _ in range(self.seq_len)]

    def decode(self, chromosome: Sequence[int]) -> Phenotype:
        """Expand each vector-character into its bit vector."""
        if len(chromosome) != self.length:
            raise ValueError(
                f"chromosome length {len(chromosome)} != coding length {self.length}"
            )
        n = self.n_pi
        return [[(gene >> j) & 1 for j in range(n)] for gene in chromosome]

    def mutate_gene(self, gene: int, rng: random.Random) -> int:
        """Point mutation: replace the whole vector with a random one."""
        return rng.randint(0, (1 << self.n_pi) - 1)


Coding = object  # structural typing: BinaryCoding | NonbinaryCoding


def make_coding(kind: str, n_pi: int, seq_len: int = 1) -> Coding:
    """Factory used by configuration code: ``kind`` in {binary, nonbinary}."""
    if kind == "binary":
        return BinaryCoding(n_pi, seq_len)
    if kind == "nonbinary":
        return NonbinaryCoding(n_pi, seq_len)
    raise ValueError(f"unknown coding kind {kind!r}")
