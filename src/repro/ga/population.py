"""Population containers, including overlapping generations (paper §III-C).

A :class:`Population` owns evaluated individuals and implements the two
replacement policies the paper compares:

* **nonoverlapping** (generation gap G = 1): the offspring generation
  wholly replaces its parents;
* **overlapping** (G < 1): ``g = G * N`` offspring are produced per
  generation and replace the ``g`` *worst* individuals, saving
  ``N - g`` fitness evaluations per generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


@dataclass
class Individual:
    """One evaluated chromosome."""

    chromosome: List[int]
    fitness: float = 0.0

    def copy(self) -> "Individual":
        """Deep copy (fresh chromosome list)."""
        return Individual(list(self.chromosome), self.fitness)


class Population:
    """A fixed-size collection of evaluated individuals."""

    def __init__(self, individuals: Sequence[Individual]) -> None:
        if not individuals:
            raise ValueError("population cannot be empty")
        self.individuals: List[Individual] = list(individuals)

    def __len__(self) -> int:
        return len(self.individuals)

    def __iter__(self):
        return iter(self.individuals)

    def __getitem__(self, index: int) -> Individual:
        return self.individuals[index]

    @property
    def fitnesses(self) -> List[float]:
        """Fitness vector in population order."""
        return [ind.fitness for ind in self.individuals]

    def best(self) -> Individual:
        """Fittest individual (ties broken by position, deterministically)."""
        return max(self.individuals, key=lambda ind: ind.fitness)

    def worst_indices(self, count: int) -> List[int]:
        """Indices of the ``count`` least-fit individuals."""
        order = sorted(range(len(self.individuals)),
                       key=lambda i: self.individuals[i].fitness)
        return order[:count]

    def replace_all(self, offspring: Sequence[Individual]) -> None:
        """Nonoverlapping replacement: discard the old generation."""
        if len(offspring) != len(self.individuals):
            raise ValueError(
                f"offspring count {len(offspring)} != population size {len(self)}"
            )
        self.individuals = list(offspring)

    def replace_worst(self, offspring: Sequence[Individual]) -> None:
        """Overlapping replacement: offspring overwrite the worst."""
        if len(offspring) > len(self.individuals):
            raise ValueError("more offspring than population slots")
        for index, child in zip(self.worst_indices(len(offspring)), offspring):
            self.individuals[index] = child

    def mean_fitness(self) -> float:
        """Arithmetic mean fitness."""
        return sum(self.fitnesses) / len(self.individuals)
