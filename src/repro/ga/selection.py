"""Selection schemes (paper §II): roulette wheel, stochastic universal,
and binary tournament with/without replacement.

Every scheme implements ``select(fitnesses, n, rng) -> list[int]``: draw
``n`` parent indices from a population described by its fitness vector.
Fitness values must be non-negative (GATEST's fitness functions are);
when the whole population has zero fitness, proportionate schemes fall
back to uniform random draws rather than dividing by zero.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Protocol, Sequence


class SelectionScheme(Protocol):
    """Strategy interface for parent selection."""

    name: str

    def select(self, fitnesses: Sequence[float], n: int, rng: random.Random) -> List[int]:
        """Return ``n`` selected population indices (repeats allowed)."""
        ...


def _validate(fitnesses: Sequence[float]) -> None:
    if not fitnesses:
        raise ValueError("cannot select from an empty population")
    if any(f < 0 for f in fitnesses):
        raise ValueError("proportionate selection requires non-negative fitness")


@dataclass(frozen=True)
class RouletteWheel:
    """Proportionate selection: slot size ~ fitness, one spin per pick."""

    name: str = "roulette"

    def select(self, fitnesses: Sequence[float], n: int, rng: random.Random) -> List[int]:
        """Spin the wheel ``n`` times (binary search over the CDF)."""
        _validate(fitnesses)
        total = float(sum(fitnesses))
        if total <= 0.0:
            return [rng.randrange(len(fitnesses)) for _ in range(n)]
        cumulative = list(itertools.accumulate(fitnesses))
        picks = []
        for _ in range(n):
            spin = rng.random() * total
            lo, hi = 0, len(cumulative) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cumulative[mid] <= spin:
                    lo = mid + 1
                else:
                    hi = mid
            picks.append(lo)
        return picks


@dataclass(frozen=True)
class StochasticUniversal:
    """Baker's stochastic universal sampling: N equidistant markers, one spin.

    Lower selection noise than roulette — the number of copies of each
    individual deviates from its expectation by less than one.
    """

    name: str = "sus"

    def select(self, fitnesses: Sequence[float], n: int, rng: random.Random) -> List[int]:
        """One spin, ``n`` equidistant markers; order then shuffled."""
        _validate(fitnesses)
        total = float(sum(fitnesses))
        if total <= 0.0:
            return [rng.randrange(len(fitnesses)) for _ in range(n)]
        step = total / n
        marker = rng.random() * step
        picks = []
        cumulative = 0.0
        index = 0
        for f in fitnesses:
            cumulative += f
            while marker < cumulative and len(picks) < n:
                picks.append(index)
                marker += step
            index += 1
        while len(picks) < n:  # guard against floating-point shortfall
            picks.append(len(fitnesses) - 1)
        rng.shuffle(picks)  # pairing order must not correlate with index
        return picks


@dataclass(frozen=True)
class TournamentWithReplacement:
    """Binary tournament; contestants are drawn with replacement."""

    name: str = "tournament-r"

    def select(self, fitnesses: Sequence[float], n: int, rng: random.Random) -> List[int]:
        """``n`` independent two-contestant tournaments."""
        _validate(fitnesses)
        size = len(fitnesses)
        picks = []
        for _ in range(n):
            a = rng.randrange(size)
            b = rng.randrange(size)
            picks.append(a if fitnesses[a] >= fitnesses[b] else b)
        return picks


@dataclass(frozen=True)
class TournamentWithoutReplacement:
    """Binary tournament without replacement (the paper's best scheme).

    The population is shuffled and contestants paired off; each
    individual enters exactly one tournament per traversal, so in one
    pass the best individual wins once and the worst never wins.  The
    permutation is refreshed whenever it runs out.
    """

    name: str = "tournament"

    def select(self, fitnesses: Sequence[float], n: int, rng: random.Random) -> List[int]:
        """Pair off a shuffled population; refresh when exhausted."""
        _validate(fitnesses)
        size = len(fitnesses)
        picks: List[int] = []
        pool: List[int] = []
        while len(picks) < n:
            if len(pool) < 2:
                pool = list(range(size))
                rng.shuffle(pool)
            a = pool.pop()
            b = pool.pop()
            picks.append(a if fitnesses[a] >= fitnesses[b] else b)
        return picks


#: Registry used by configuration code and the experiment harness.
SELECTION_SCHEMES = {
    "roulette": RouletteWheel,
    "sus": StochasticUniversal,
    "tournament": TournamentWithoutReplacement,
    "tournament-r": TournamentWithReplacement,
}


def make_selection(name: str) -> SelectionScheme:
    """Construct a selection scheme by registry name."""
    try:
        return SELECTION_SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown selection scheme {name!r}; choose from {sorted(SELECTION_SCHEMES)}"
        ) from None
