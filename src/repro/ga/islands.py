"""Island-model (coarse-grained parallel) genetic algorithm.

The paper's conclusion singles out parallelism: "Genetic algorithms are
particularly amenable to parallel implementations, so very good
speedups are expected for a parallel GA-based test generator."  The
classic coarse-grained decomposition is the *island model*: the
population is split into semi-isolated islands that evolve
independently and exchange their best individuals along a ring every
few generations.  Each island's work (selection, crossover, fitness
evaluation of its own population) is embarrassingly parallel between
migrations, which is where a distributed implementation would put its
process boundary.

This implementation executes islands within one process (the fitness
evaluator — a fault simulator holding shared circuit state — is not
safely shareable across processes without serialization costs dwarfing
the GA), but it preserves the island *algorithm*: with ``n_islands=1``
it reduces exactly to the plain GA, and the test suite checks the
migration semantics that a distributed port would rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .chromosome import Chromosome
from .engine import BatchEvaluator, GAParams, GAResult, GeneticAlgorithm
from .population import Individual, Population


@dataclass
class IslandParams:
    """Topology knobs on top of the per-island :class:`GAParams`."""

    n_islands: int = 4
    migration_interval: int = 2   # generations between migrations
    migrants: int = 1             # individuals sent to the ring neighbour

    def __post_init__(self) -> None:
        if self.n_islands < 1:
            raise ValueError("need at least one island")
        if self.migration_interval < 1:
            raise ValueError("migration interval must be >= 1")
        if self.migrants < 0:
            raise ValueError("migrants must be >= 0")


class IslandGA:
    """Ring-topology island GA over a shared batch evaluator.

    ``params.population_size`` is the size of *each island*; the total
    population is ``n_islands * population_size``.
    """

    def __init__(
        self,
        coding,
        evaluator: BatchEvaluator,
        params: GAParams,
        island_params: Optional[IslandParams] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.coding = coding
        self.evaluator = evaluator
        self.params = params
        self.island_params = island_params or IslandParams()
        self.rng = rng if rng is not None else random.Random()
        self.evaluations = 0

    def _wrapped_evaluator(self):
        def evaluate(chromosomes):
            fitnesses = self.evaluator(chromosomes)
            self.evaluations += len(chromosomes)
            return fitnesses

        return evaluate

    def run(self) -> GAResult:
        """Evolve all islands with ring migration; returns the global best."""
        ip = self.island_params
        evaluator = self._wrapped_evaluator()
        # Each island is a GeneticAlgorithm driven one migration epoch at
        # a time.  They share this object's RNG for reproducibility.
        islands: List[GeneticAlgorithm] = [
            GeneticAlgorithm(self.coding, evaluator, self.params, rng=self.rng)
            for _ in range(ip.n_islands)
        ]
        populations: List[Population] = [
            ga._initial_population() for ga in islands
        ]

        best = max((pop.best() for pop in populations),
                   key=lambda ind: ind.fitness).copy()
        best_generation = 0
        history = [best.fitness]

        total_generations = self.params.generations
        generation = 0
        while generation < total_generations:
            epoch = min(ip.migration_interval, total_generations - generation)
            for _ in range(epoch):
                generation += 1
                for ga, population in zip(islands, populations):
                    offspring_count = (
                        min(ga.params.offspring_per_generation,
                            ga.params.population_size)
                        if ga.params.generation_gap < 1.0
                        else ga.params.population_size
                    )
                    chromosomes = ga._breed(population, offspring_count)
                    fitnesses = evaluator(chromosomes)
                    offspring = [
                        Individual(c, f) for c, f in zip(chromosomes, fitnesses)
                    ]
                    if ga.params.generation_gap < 1.0:
                        population.replace_worst(offspring)
                    else:
                        population.replace_all(offspring)
            # Ring migration: island i sends copies of its best
            # individuals to island (i+1), replacing the worst there.
            if ip.n_islands > 1 and ip.migrants > 0:
                emigrants = []
                for population in populations:
                    ranked = sorted(
                        population.individuals,
                        key=lambda ind: ind.fitness, reverse=True,
                    )
                    emigrants.append([ind.copy() for ind in ranked[:ip.migrants]])
                for i, population in enumerate(populations):
                    incoming = emigrants[(i - 1) % ip.n_islands]
                    population.replace_worst(incoming)
            epoch_best = max((pop.best() for pop in populations),
                             key=lambda ind: ind.fitness)
            if epoch_best.fitness > best.fitness:
                best = epoch_best.copy()
                best_generation = generation
            history.append(
                max(pop.best().fitness for pop in populations)
            )

        return GAResult(
            best=best,
            best_generation=best_generation,
            generations_run=total_generations,
            evaluations=self.evaluations,
            history=history,
        )
