"""Crossover operators (paper §II): 1-point, 2-point, uniform.

Operators are generic over gene type, so the same three classes serve
both codings: with :class:`~repro.ga.chromosome.BinaryCoding` genes are
bits; with :class:`~repro.ga.chromosome.NonbinaryCoding` genes are whole
vectors, which realizes the paper's "crossover can occur at test vector
boundaries only" rule for the nonbinary alphabet.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

Pair = Tuple[List[int], List[int]]


class CrossoverOperator(Protocol):
    """Strategy interface: combine two parents into two children."""

    name: str

    def cross(self, a: Sequence[int], b: Sequence[int], rng: random.Random) -> Pair:
        """Combine two equal-length parents into two children."""
        ...


def _check(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"parent lengths differ: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("cannot cross empty chromosomes")


@dataclass(frozen=True)
class OnePoint:
    """Cut both parents at one random position in [1, L-1] and swap tails."""

    name: str = "1-point"

    def cross(self, a: Sequence[int], b: Sequence[int], rng: random.Random) -> Pair:
        """Single random cut point; tails swapped."""
        _check(a, b)
        length = len(a)
        if length == 1:  # degenerate: nothing to cut, children = parents
            return list(a), list(b)
        point = rng.randint(1, length - 1)
        return (
            list(a[:point]) + list(b[point:]),
            list(b[:point]) + list(a[point:]),
        )


@dataclass(frozen=True)
class TwoPoint:
    """Swap the segment between two random cut positions."""

    name: str = "2-point"

    def cross(self, a: Sequence[int], b: Sequence[int], rng: random.Random) -> Pair:
        """Two random cut points; middle segment swapped."""
        _check(a, b)
        length = len(a)
        if length == 1:
            return list(a), list(b)
        p = rng.randint(1, length - 1)
        q = rng.randint(1, length - 1)
        if p > q:
            p, q = q, p
        return (
            list(a[:p]) + list(b[p:q]) + list(a[q:]),
            list(b[:p]) + list(a[p:q]) + list(b[q:]),
        )


@dataclass(frozen=True)
class Uniform:
    """Swap each gene independently with probability ``swap_prob``.

    The paper's recommended operator (with the typical probability 1/2).
    """

    swap_prob: float = 0.5
    name: str = "uniform"

    def cross(self, a: Sequence[int], b: Sequence[int], rng: random.Random) -> Pair:
        """Independent per-gene swaps."""
        _check(a, b)
        child_a = list(a)
        child_b = list(b)
        for i in range(len(child_a)):
            if rng.random() < self.swap_prob:
                child_a[i], child_b[i] = child_b[i], child_a[i]
        return child_a, child_b


#: Registry used by configuration code and the experiment harness.
CROSSOVER_OPERATORS = {
    "1-point": OnePoint,
    "2-point": TwoPoint,
    "uniform": Uniform,
}


def make_crossover(name: str) -> CrossoverOperator:
    """Construct a crossover operator by registry name."""
    try:
        return CROSSOVER_OPERATORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown crossover {name!r}; choose from {sorted(CROSSOVER_OPERATORS)}"
        ) from None
