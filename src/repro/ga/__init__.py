"""Genetic-algorithm engine: codings, operators, populations, evolution loop."""

from .chromosome import BinaryCoding, Chromosome, NonbinaryCoding, Phenotype, make_coding
from .crossover import (
    CROSSOVER_OPERATORS,
    CrossoverOperator,
    OnePoint,
    TwoPoint,
    Uniform,
    make_crossover,
)
from .engine import BatchEvaluator, GAParams, GAResult, GeneticAlgorithm
from .islands import IslandGA, IslandParams
from .mutation import Mutation
from .population import Individual, Population
from .selection import (
    SELECTION_SCHEMES,
    RouletteWheel,
    SelectionScheme,
    StochasticUniversal,
    TournamentWithReplacement,
    TournamentWithoutReplacement,
    make_selection,
)

__all__ = [
    "BatchEvaluator",
    "BinaryCoding",
    "CROSSOVER_OPERATORS",
    "Chromosome",
    "CrossoverOperator",
    "GAParams",
    "GAResult",
    "GeneticAlgorithm",
    "Individual",
    "IslandGA",
    "IslandParams",
    "Mutation",
    "NonbinaryCoding",
    "OnePoint",
    "Phenotype",
    "Population",
    "RouletteWheel",
    "SELECTION_SCHEMES",
    "SelectionScheme",
    "StochasticUniversal",
    "TournamentWithReplacement",
    "TournamentWithoutReplacement",
    "TwoPoint",
    "Uniform",
    "make_coding",
    "make_crossover",
    "make_selection",
]
