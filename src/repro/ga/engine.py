"""The genetic-algorithm engine (Goldberg's simple GA plus the paper's
overlapping-generation variant).

The engine is application-agnostic: it evolves chromosomes under a
coding, a selection scheme, a crossover operator and a mutation rate,
calling a user-supplied *batch* evaluator for fitness.  Batching is what
lets GATEST score a whole population with one pattern-parallel simulator
pass (see :mod:`repro.sim.logic3`).

GATEST specifics — fitness functions, parameter schedules, phase logic —
live in :mod:`repro.core`; nothing here knows about circuits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..telemetry.collector import NullCollector, get_collector
from .chromosome import Chromosome
from .crossover import CrossoverOperator, make_crossover
from .mutation import Mutation
from .population import Individual, Population
from .selection import SelectionScheme, make_selection

BatchEvaluator = Callable[[List[Chromosome]], List[float]]


@dataclass
class GAParams:
    """Knobs of one GA run (paper §II, §III-C, §III-D).

    ``generation_gap`` is G = g/N: the fraction of the population
    replaced per generation.  G = 1 is the simple nonoverlapping GA.
    """

    population_size: int
    generations: int = 8
    selection: str = "tournament"
    crossover: str = "uniform"
    mutation_rate: float = 1 / 64
    crossover_prob: float = 1.0
    generation_gap: float = 1.0
    #: Collapse duplicate chromosomes within one generation before the
    #: batch evaluator is called.  Exact for any per-candidate-pure
    #: evaluator (all of GATEST's are); GATEST turns it on together with
    #: the chromosome evaluation cache (see :mod:`repro.parallel`).
    dedup_evaluations: bool = False

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population size must be at least 2")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if not 0.0 <= self.crossover_prob <= 1.0:
            raise ValueError("crossover probability must be in [0, 1]")
        if not 0.0 < self.generation_gap <= 1.0:
            raise ValueError("generation gap must be in (0, 1]")

    @property
    def offspring_per_generation(self) -> int:
        """g = G * N, rounded to an even count of at least 2."""
        g = max(2, round(self.generation_gap * self.population_size))
        return g + (g % 2)


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best: Individual
    best_generation: int        # generation in which the best first appeared
    generations_run: int
    evaluations: int            # total fitness evaluations performed
    history: List[float] = field(default_factory=list)  # best fitness per gen


class GeneticAlgorithm:
    """One GA run over a fixed coding and evaluator.

    ``evaluator`` receives a list of chromosomes and must return their
    fitnesses in order; it is called once per generation (plus once for
    the initial population).
    """

    def __init__(
        self,
        coding,
        evaluator: BatchEvaluator,
        params: GAParams,
        rng: Optional[random.Random] = None,
        initial: Optional[Sequence[Chromosome]] = None,
        collector: Optional[NullCollector] = None,
    ) -> None:
        self.coding = coding
        self.evaluator = evaluator
        self.params = params
        self.collector = collector if collector is not None else get_collector()
        self.rng = rng if rng is not None else random.Random()
        self.selection: SelectionScheme = (
            make_selection(params.selection)
            if isinstance(params.selection, str) else params.selection
        )
        self.crossover: CrossoverOperator = (
            make_crossover(params.crossover)
            if isinstance(params.crossover, str) else params.crossover
        )
        self.mutation = Mutation(params.mutation_rate)
        self._initial = list(initial) if initial is not None else None
        self.evaluations = 0

    # ------------------------------------------------------------------

    def _evaluate(self, chromosomes: List[Chromosome]) -> List[float]:
        if self.params.dedup_evaluations:
            evaluated = self._evaluate_deduped(chromosomes)
        else:
            evaluated = self.evaluator(chromosomes)
        if len(evaluated) != len(chromosomes):
            raise ValueError(
                f"evaluator returned {len(evaluated)} fitnesses "
                f"for {len(chromosomes)} chromosomes"
            )
        # ``evaluations`` counts logical fitness lookups (the paper's
        # cost metric), independent of how many were deduplicated.
        self.evaluations += len(chromosomes)
        return list(evaluated)

    def _evaluate_deduped(self, chromosomes: List[Chromosome]) -> List[float]:
        """Call the evaluator once per *distinct* chromosome.

        Exact whenever the evaluator is pure per candidate (a
        candidate's fitness does not depend on its batch-mates), which
        holds for every GATEST evaluator: the pattern-parallel and
        wide-word batch passes keep each candidate in its own bit slots.
        """
        index_of: Dict[tuple, int] = {}
        unique: List[Chromosome] = []
        for c in chromosomes:
            key = tuple(c)
            if key not in index_of:
                index_of[key] = len(unique)
                unique.append(c)
        if len(unique) == len(chromosomes):
            return self.evaluator(chromosomes)
        fitnesses = self.evaluator(unique)
        if len(fitnesses) != len(unique):
            raise ValueError(
                f"evaluator returned {len(fitnesses)} fitnesses "
                f"for {len(unique)} chromosomes"
            )
        if self.collector.enabled:
            self.collector.inc(
                "ga.dedup.skipped", len(chromosomes) - len(unique)
            )
        return [fitnesses[index_of[tuple(c)]] for c in chromosomes]

    def _initial_population(self) -> Population:
        size = self.params.population_size
        if self._initial is not None:
            chromosomes = [list(c) for c in self._initial]
            if len(chromosomes) != size:
                raise ValueError(
                    f"initial population has {len(chromosomes)} members, "
                    f"expected {size}"
                )
        else:
            chromosomes = [self.coding.random(self.rng) for _ in range(size)]
        fitnesses = self._evaluate(chromosomes)
        return Population(
            [Individual(c, f) for c, f in zip(chromosomes, fitnesses)]
        )

    def _breed(self, population: Population, n_offspring: int) -> List[Chromosome]:
        """Select, cross and mutate to produce ``n_offspring`` chromosomes."""
        rng = self.rng
        parents = self.selection.select(
            population.fitnesses, n_offspring, rng
        )
        offspring: List[Chromosome] = []
        for i in range(0, n_offspring - 1, 2):
            a = population[parents[i]].chromosome
            b = population[parents[i + 1]].chromosome
            if rng.random() < self.params.crossover_prob:
                child_a, child_b = self.crossover.cross(a, b, rng)
            else:
                child_a, child_b = list(a), list(b)
            offspring.append(self.mutation.mutate(child_a, self.coding, rng))
            offspring.append(self.mutation.mutate(child_b, self.coding, rng))
        return offspring[:n_offspring]

    def _record_generation(self, collector, generation: int, population: Population) -> None:
        """Emit one telemetry generation record (enabled collectors only)."""
        fitnesses = population.fitnesses
        collector.generation(
            generation=generation,
            best=max(fitnesses),
            mean=sum(fitnesses) / len(fitnesses),
            evaluations=self.evaluations,
            population=len(fitnesses),
        )

    def run(self, on_generation: Optional[Callable[[int, Population], None]] = None) -> GAResult:
        """Evolve for the configured number of generations.

        ``on_generation(gen_index, population)`` is called after each
        generation (and for the initial population with index 0) — used
        by the experiment traces for Figures 1 and 2.
        """
        params = self.params
        collector = self.collector
        population = self._initial_population()
        best = population.best().copy()
        best_generation = 0
        history = [best.fitness]
        if on_generation is not None:
            on_generation(0, population)
        if collector.enabled:
            self._record_generation(collector, 0, population)

        overlapping = params.generation_gap < 1.0
        for generation in range(1, params.generations + 1):
            if overlapping:
                n_offspring = min(
                    params.offspring_per_generation, params.population_size
                )
            else:
                n_offspring = params.population_size
            chromosomes = self._breed(population, n_offspring)
            fitnesses = self._evaluate(chromosomes)
            offspring = [
                Individual(c, f) for c, f in zip(chromosomes, fitnesses)
            ]
            if overlapping:
                population.replace_worst(offspring)
            else:
                population.replace_all(offspring)
            generation_best = population.best()
            if generation_best.fitness > best.fitness:
                best = generation_best.copy()
                best_generation = generation
            history.append(population.best().fitness)
            if on_generation is not None:
                on_generation(generation, population)
            if collector.enabled:
                self._record_generation(collector, generation, population)

        if collector.enabled:
            collector.inc("ga.runs")
            collector.inc("ga.generations", params.generations)
            collector.inc("ga.evaluations", self.evaluations)
        return GAResult(
            best=best,
            best_generation=best_generation,
            generations_run=params.generations,
            evaluations=self.evaluations,
            history=history,
        )
