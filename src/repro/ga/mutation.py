"""Mutation operator (paper §II): per-gene point mutation.

The gene-level semantics live on the coding (bit flip for binary,
whole-vector replacement for nonbinary — paper §III-A); this module
applies them at a configurable per-gene rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Mutation:
    """Mutate each gene independently with probability ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"mutation rate must be in [0, 1], got {self.rate}")

    def mutate(self, chromosome: Sequence[int], coding, rng: random.Random) -> List[int]:
        """Return a (possibly) mutated copy; the input is not modified."""
        out = list(chromosome)
        rate = self.rate
        if rate == 0.0:
            return out
        for i in range(len(out)):
            if rng.random() < rate:
                out[i] = coding.mutate_gene(out[i], rng)
        return out
