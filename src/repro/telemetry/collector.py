"""Telemetry collectors: the no-op default and the recording collector.

Two implementations share one interface:

* :class:`NullCollector` — the default everywhere.  Every method is a
  cheap no-op so instrumented hot paths cost a single attribute access
  and branch (``if collector.enabled:``) when telemetry is off; the
  throughput guard in ``tests/test_telemetry.py`` pins this.
* :class:`TelemetryCollector` — records spans, counters, gauges, GA
  generation statistics and StageEvent-aligned stage records, and dumps
  them as a schema-versioned JSONL trace (see ``docs/TELEMETRY.md``).

Instrumented classes accept an explicit ``collector`` argument and fall
back to the module-level default (:func:`get_collector`), which callers
switch with :func:`install` or scope with the :func:`use` context
manager — that is how the CLI's ``--trace`` and the benchmark suite's
``REPRO_BENCH_TRACE`` hook attach one collector to a whole run without
threading it through every constructor.

Spans *always* measure elapsed time (two ``perf_counter`` calls), even
under the null collector — callers like the harness runner and the
generator read ``span.elapsed`` for their own reporting, which is
exactly how reported wall-clock and trace timings are kept from
drifting apart.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .records import SCHEMA_VERSION, make_record


class Span:
    """One scoped timer.  Use as a context manager::

        with collector.span("generator.run", circuit="s27") as sp:
            ...
        print(sp.elapsed)

    Under a recording collector the span is pushed on the collector's
    scope stack at entry (giving children a hierarchical ``path``) and
    emitted as a ``span`` record at exit.  Under the null collector it
    only measures ``elapsed``.
    """

    __slots__ = ("name", "attrs", "elapsed", "_collector", "_start", "_t0")

    def __init__(self, collector: Optional["TelemetryCollector"], name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.elapsed = 0.0
        self._collector = collector
        self._start = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        collector = self._collector
        if collector is not None:
            self._t0 = collector.now()
            collector._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        collector = self._collector
        if collector is not None:
            path = "/".join(collector._stack)
            depth = len(collector._stack) - 1
            collector._stack.pop()
            collector._emit(
                make_record(
                    "span",
                    name=self.name,
                    path=path,
                    depth=depth,
                    t0=round(self._t0, 9),
                    dur=round(self.elapsed, 9),
                    **self.attrs,
                )
            )


class _NullBind:
    """Shared no-op context manager for :meth:`NullCollector.bind`."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_BIND = _NullBind()


class NullCollector:
    """Disabled telemetry: measures span time, records nothing."""

    enabled = False

    def span(self, name: str, **attrs) -> Span:
        """A timer that measures but does not record."""
        return Span(None, name, attrs)

    def bind(self, **attrs) -> _NullBind:
        """No-op context scope."""
        return _NULL_BIND

    def inc(self, name: str, value: float = 1) -> None:
        """No-op counter increment."""

    def gauge(self, name: str, value: float) -> None:
        """No-op gauge sample."""

    def generation(self, **fields) -> None:
        """No-op GA generation record."""

    def stage(self, **fields) -> None:
        """No-op stage record."""

    def merge_worker_trace(self, scope: str, records: List[dict]) -> None:
        """No-op merge of a worker process's shipped-back trace."""

    def records(self) -> List[dict]:
        """The null collector holds no records."""
        return []

    def dump(self, path) -> int:
        """Nothing to write; returns 0 without touching ``path``."""
        return 0


#: The process-wide disabled collector (also the initial default).
NULL = NullCollector()

_default: NullCollector = NULL


def get_collector() -> NullCollector:
    """The current default collector (``NULL`` unless installed)."""
    return _default


def install(collector: NullCollector) -> NullCollector:
    """Replace the default collector; returns the previous one."""
    global _default
    previous = _default
    _default = collector
    return previous


@contextmanager
def use(collector: NullCollector) -> Iterator[NullCollector]:
    """Scope ``collector`` as the default for a ``with`` block."""
    previous = install(collector)
    try:
        yield collector
    finally:
        install(previous)


class TelemetryCollector(NullCollector):
    """Recording collector: spans, counters, gauges, generations, stages.

    All timestamps (``t``, ``t0``) are seconds relative to collector
    construction.  Counters and gauges aggregate in memory and are
    appended to the trace as final ``counter`` / last-value records only
    at :meth:`records` / :meth:`dump` time; everything else is emitted
    live in chronological order after the leading ``meta`` record.
    """

    enabled = True

    def __init__(self, source: str = "repro.telemetry") -> None:
        self._origin = time.perf_counter()
        self._events: List[dict] = []
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._stack: List[str] = []
        self._ctx: Dict[str, object] = {}
        self._meta = make_record("meta", schema=SCHEMA_VERSION, source=source)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since collector construction."""
        return time.perf_counter() - self._origin

    def _emit(self, record: dict) -> None:
        self._events.append(record)

    def span(self, name: str, **attrs) -> Span:
        """A recording scoped timer (hierarchical path from nesting)."""
        return Span(self, name, attrs)

    @contextmanager
    def bind(self, **attrs) -> Iterator[None]:
        """Attach context attributes to generation/stage records emitted
        inside the ``with`` block (nested binds stack and restore)."""
        saved = self._ctx
        self._ctx = {**saved, **attrs}
        try:
            yield
        finally:
            self._ctx = saved

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Sample an instantaneous value (also emitted live with ``t``)."""
        self._gauges[name] = value
        self._emit(
            make_record("gauge", name=name, value=value, t=round(self.now(), 9))
        )

    def generation(
        self,
        generation: int,
        best: float,
        mean: float,
        evaluations: int,
        population: int,
        **attrs,
    ) -> None:
        """Record one GA generation's statistics (plus bound context)."""
        self._emit(
            make_record(
                "generation",
                t=round(self.now(), 9),
                generation=generation,
                best=best,
                mean=mean,
                evaluations=evaluations,
                population=population,
                **{**self._ctx, **attrs},
            )
        )

    def stage(
        self,
        event: str,
        phase: str,
        frames: int,
        detected: int,
        committed: bool,
        coverage: float,
        vectors_total: int,
        faults_active: int,
        **attrs,
    ) -> None:
        """Record one generator stage event (mirrors ``StageEvent``)."""
        self._emit(
            make_record(
                "stage",
                t=round(self.now(), 9),
                event=event,
                phase=phase,
                frames=frames,
                detected=detected,
                committed=committed,
                coverage=coverage,
                vectors_total=vectors_total,
                faults_active=faults_active,
                **{**self._ctx, **attrs},
            )
        )

    def merge_worker_trace(self, scope: str, records: List[dict]) -> None:
        """Fold a worker process's trace into this (parent) collector.

        ``records`` is what the worker's own ``TelemetryCollector``
        returned from :meth:`records`, shipped across the pool boundary
        with its result.  Events are re-emitted here under ``scope``
        (e.g. ``worker.3`` for the seed-3 worker): span ``path``s are
        prefixed with ``scope/`` and every event gains a ``scope``
        attribute, so a merged trace remains one valid trace in which
        worker-side activity is attributable.  Worker counters are
        added into the parent's same-named aggregates — campaign-wide
        totals (simulated frames, cache traffic, retries, …) stay
        meaningful across the pool boundary.  Worker timestamps are
        kept worker-relative (each worker's clock starts at its own
        collector construction); the ``scope`` attribute marks them.

        Scopes *compose*: a record that already carries a ``scope``
        (it was merged once on another host — e.g. ``worker.3`` from a
        campaign worker's seed pool) is re-scoped to
        ``<scope>.<existing>``, so a distributed campaign's doubly
        shipped spans land under ``host.<name>.worker.<seed>`` with the
        path prefixed once per hop.

        Increments ``worker.trace.merged`` once per merged trace.
        """
        for record in records:
            kind = record.get("kind")
            if kind == "meta":
                continue
            if kind == "counter":
                self.inc(record["name"], record["value"])
                continue
            merged = dict(record)
            existing = merged.get("scope")
            merged["scope"] = f"{scope}.{existing}" if existing else scope
            if kind == "span":
                merged["path"] = f"{scope}/{merged['path']}"
                merged["depth"] = merged["depth"] + 1
            self._emit(merged)
        self.inc("worker.trace.merged")

    # ------------------------------------------------------------------
    # Inspection / export
    # ------------------------------------------------------------------

    @property
    def counters(self) -> Dict[str, float]:
        """Current counter aggregates (live view, name -> value)."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        """Last sampled value of every gauge."""
        return dict(self._gauges)

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """Chronological event records, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [r for r in self._events if r["kind"] == kind]

    def records(self) -> List[dict]:
        """The full trace: meta, chronological events, counter finals."""
        trace = [dict(self._meta)]
        trace.extend(self._events)
        for name in sorted(self._counters):
            trace.append(
                make_record("counter", name=name, value=self._counters[name])
            )
        return trace

    def mark(self) -> tuple:
        """An opaque position marker for :meth:`records_since`.

        Lets a long-lived collector (e.g. the one a service tier worker
        process keeps for its whole life) ship per-task *deltas*: mark
        before the task, collect :meth:`records_since` after.  The
        marker captures the event count and a counter snapshot.
        """
        return (len(self._events), dict(self._counters))

    def records_since(self, marker: tuple) -> List[dict]:
        """A valid partial trace of everything recorded after ``marker``.

        Same shape as :meth:`records` — leading ``meta``, chronological
        events, trailing ``counter`` records — but events are only those
        emitted since the mark and counter values are *deltas* against
        the snapshot, so folding the result into another collector via
        :meth:`merge_worker_trace` (or replaying it record by record)
        adds exactly this window's activity and nothing twice.
        """
        n_events, counters = marker
        trace = [dict(self._meta)]
        trace.extend(self._events[n_events:])
        for name in sorted(self._counters):
            delta = self._counters[name] - counters.get(name, 0)
            if delta:
                trace.append(make_record("counter", name=name, value=delta))
        return trace

    def dump(self, path) -> int:
        """Write the trace as JSONL; returns the number of records."""
        from .sink import write_trace

        return write_trace(path, self.records())
