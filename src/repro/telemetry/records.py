"""Trace record schema: kinds, required fields, validation.

Every telemetry record is one flat JSON object with two envelope
fields — ``v`` (the schema version, currently |version|) and ``kind``
(one of :data:`RECORD_KINDS`) — plus the kind's required fields and any
number of extra context attributes (merged in by
:meth:`~repro.telemetry.collector.TelemetryCollector.bind`).  The full
human-readable specification, with one example record per kind, lives
in ``docs/TELEMETRY.md``; this module is the machine-checkable half.

The schema is deliberately *open*: unknown extra fields are allowed
(forward compatibility for bound context attributes), but the envelope,
the required fields and their types are not negotiable —
:func:`validate_record` raises :class:`SchemaError` on any violation,
and the test suite round-trips every record the instrumented stack
emits through it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

#: Version stamped into every record's ``v`` field.  Bump on any change
#: to required fields or their meaning, and document the migration in
#: docs/TELEMETRY.md.
SCHEMA_VERSION = 1

_NUMBER = (int, float)

#: kind -> {field name -> accepted types}.  ``kind`` and ``v`` are the
#: envelope and are required for every record.
REQUIRED_FIELDS: Dict[str, Dict[str, tuple]] = {
    # One per trace, always first: identifies the producing run.
    "meta": {
        "schema": (int,),
        "source": (str,),
    },
    # One per closed scoped timer.
    "span": {
        "name": (str,),
        "path": (str,),
        "depth": (int,),
        "t0": _NUMBER,
        "dur": _NUMBER,
    },
    # Final aggregate of one named counter (emitted at dump time).
    "counter": {
        "name": (str,),
        "value": _NUMBER,
    },
    # One per gauge() call: an instantaneous sampled value.
    "gauge": {
        "name": (str,),
        "value": _NUMBER,
        "t": _NUMBER,
    },
    # One per GA generation (including the initial population, index 0).
    "generation": {
        "t": _NUMBER,
        "generation": (int,),
        "best": _NUMBER,
        "mean": _NUMBER,
        "evaluations": (int,),
        "population": (int,),
    },
    # One per committed vector / attempted sequence (StageEvent-aligned).
    "stage": {
        "t": _NUMBER,
        "event": (str,),
        "phase": (str,),
        "frames": (int,),
        "detected": (int,),
        "committed": (bool,),
        "coverage": _NUMBER,
        "vectors_total": (int,),
        "faults_active": (int,),
    },
}

#: The record kinds of schema version 1, in documentation order.
RECORD_KINDS: Tuple[str, ...] = tuple(REQUIRED_FIELDS)


class SchemaError(ValueError):
    """A record does not conform to the telemetry trace schema."""


def make_record(kind: str, **fields) -> Dict[str, object]:
    """Build a schema-enveloped record dict (no validation — hot path)."""
    record: Dict[str, object] = {"v": SCHEMA_VERSION, "kind": kind}
    record.update(fields)
    return record


def validate_record(record: Mapping[str, object]) -> None:
    """Raise :class:`SchemaError` unless ``record`` conforms to the schema."""
    if not isinstance(record, Mapping):
        raise SchemaError(f"record must be an object, got {type(record).__name__}")
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    kind = record.get("kind")
    if kind not in REQUIRED_FIELDS:
        raise SchemaError(f"unknown record kind {kind!r}")
    for name, types in REQUIRED_FIELDS[kind].items():
        if name not in record:
            raise SchemaError(f"{kind} record missing required field {name!r}")
        value = record[name]
        # bool is an int subclass; reject it where a number is required
        # unless the field genuinely is a bool.
        if bool not in types and isinstance(value, bool):
            raise SchemaError(
                f"{kind}.{name} must be {'/'.join(t.__name__ for t in types)}, "
                f"got bool"
            )
        if not isinstance(value, types):
            raise SchemaError(
                f"{kind}.{name} must be {'/'.join(t.__name__ for t in types)}, "
                f"got {type(value).__name__}"
            )


def validate_trace(records: Iterable[Mapping[str, object]]) -> List[Mapping[str, object]]:
    """Validate a whole trace: every record, and ``meta`` first.

    Returns the records as a list for convenience.
    """
    trace = list(records)
    if not trace:
        raise SchemaError("empty trace (expected at least a meta record)")
    for record in trace:
        validate_record(record)
    if trace[0].get("kind") != "meta":
        raise SchemaError(
            f"first record must be meta, got {trace[0].get('kind')!r}"
        )
    return trace
