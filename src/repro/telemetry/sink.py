"""JSONL trace I/O: streaming sink, whole-trace write, read-back.

The on-disk format is JSON Lines: one record object per line, UTF-8,
``\n`` separators, no trailing commas — greppable, appendable, and
streamable into any log pipeline.  Records follow the schema in
:mod:`repro.telemetry.records` (documented in ``docs/TELEMETRY.md``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, List, Mapping, Optional, Union

from ..atomicio import atomic_open
from .records import validate_record

PathLike = Union[str, Path]


def _encode(record: Mapping[str, object]) -> str:
    return json.dumps(record, separators=(",", ":"), sort_keys=False)


class JsonlSink:
    """Streaming JSONL writer (use as a context manager).

    Owns the file handle when constructed from a path; borrows it when
    given an open text stream (useful for stdout or an in-memory
    buffer).  ``validate=True`` schema-checks every record on write —
    the default, because a malformed trace discovered at analysis time
    is far more expensive than the check.
    """

    def __init__(self, target: Union[PathLike, IO[str]], validate: bool = True) -> None:
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owned = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owned = True
        self._validate = validate
        self.count = 0

    def write(self, record: Mapping[str, object]) -> None:
        """Append one record as a JSON line."""
        if self._validate:
            validate_record(record)
        self._fh.write(_encode(record))
        self._fh.write("\n")
        self.count += 1

    def write_all(self, records: Iterable[Mapping[str, object]]) -> int:
        """Append many records; returns how many were written."""
        written = 0
        for record in records:
            self.write(record)
            written += 1
        return written

    def close(self) -> None:
        """Flush and close (only closes a handle this sink opened)."""
        self._fh.flush()
        if self._owned:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def write_trace(path: PathLike, records: Iterable[Mapping[str, object]]) -> int:
    """Write a whole trace to ``path``; returns the record count.

    The write is atomic (tmp + fsync + rename): readers never see a
    half-written trace, and a crash mid-write leaves any previous trace
    at ``path`` intact.
    """
    with atomic_open(path) as fh:
        with JsonlSink(fh) as sink:
            return sink.write_all(records)


def read_trace(path: PathLike, validate: bool = True) -> List[dict]:
    """Read a JSONL trace back into a list of record dicts.

    Blank lines are skipped.  With ``validate`` (the default) every
    record is schema-checked; errors carry the 1-based line number.
    """
    from .records import SchemaError

    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if validate:
                try:
                    validate_record(record)
                except SchemaError as exc:
                    raise SchemaError(f"{path}:{lineno}: {exc}") from exc
            records.append(record)
    return records
