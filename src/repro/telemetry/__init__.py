"""Telemetry: scoped timers, counters, GA statistics, JSONL run traces.

The observability layer for the GATEST stack (see ``docs/TELEMETRY.md``
for the metric catalogue and the JSONL record schema).  The default
collector is a no-op (:data:`NULL`); attach a recording
:class:`TelemetryCollector` explicitly (constructor arguments), via
:func:`install` / :func:`use` (process default), the CLI's ``--trace``
/ ``--metrics`` flags, or the benchmark suite's ``REPRO_BENCH_TRACE``
hook.

Quickstart::

    from repro import s27
    from repro.core import GaTestGenerator, TestGenConfig
    from repro.telemetry import TelemetryCollector

    collector = TelemetryCollector()
    result = GaTestGenerator(s27(), TestGenConfig(seed=1),
                             collector=collector).run()
    collector.dump("trace.jsonl")
"""

from .collector import (
    NULL,
    NullCollector,
    Span,
    TelemetryCollector,
    get_collector,
    install,
    use,
)
from .records import (
    RECORD_KINDS,
    REQUIRED_FIELDS,
    SCHEMA_VERSION,
    SchemaError,
    make_record,
    validate_record,
    validate_trace,
)
from .sink import JsonlSink, read_trace, write_trace
from .summary import generation_trajectory, metrics_summary, trace_summary

__all__ = [
    "NULL",
    "NullCollector",
    "Span",
    "TelemetryCollector",
    "get_collector",
    "install",
    "use",
    "RECORD_KINDS",
    "REQUIRED_FIELDS",
    "SCHEMA_VERSION",
    "SchemaError",
    "make_record",
    "validate_record",
    "validate_trace",
    "JsonlSink",
    "read_trace",
    "write_trace",
    "generation_trajectory",
    "metrics_summary",
    "trace_summary",
]
