"""Human-readable rollups of a telemetry trace.

:func:`metrics_summary` renders a live collector (the CLI's
``--metrics`` table); :func:`trace_summary` renders a record list (a
trace read back from JSONL), so post-hoc analysis of a dumped run and
in-process reporting share one formatter.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Sequence


def _format_table(rows: Sequence[Sequence[str]], header: Sequence[str]) -> List[str]:
    """Align a small left-justified text table (numbers right-justified
    look worse than they read in a terminal at these widths)."""
    table = [list(header)] + [list(r) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def _span_rollup(spans: Iterable[Mapping[str, object]]) -> "OrderedDict[str, Dict[str, float]]":
    rollup: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
    for record in spans:
        path = str(record["path"])
        agg = rollup.setdefault(path, {"calls": 0, "total": 0.0, "max": 0.0})
        agg["calls"] += 1
        dur = float(record["dur"])  # type: ignore[arg-type]
        agg["total"] += dur
        agg["max"] = max(agg["max"], dur)
    return rollup


def trace_summary(records: Sequence[Mapping[str, object]]) -> str:
    """Render a record list (e.g. from :func:`read_trace`) as text."""
    by_kind: Dict[str, List[Mapping[str, object]]] = {}
    for record in records:
        by_kind.setdefault(str(record.get("kind")), []).append(record)

    lines: List[str] = []
    counts = ", ".join(
        f"{kind}={len(rs)}" for kind, rs in sorted(by_kind.items())
    )
    lines.append(f"trace: {len(records)} records ({counts})")

    spans = by_kind.get("span", [])
    if spans:
        lines.append("")
        lines.append("spans")
        rows = [
            [path, str(agg["calls"]), f"{agg['total']:.3f}s", f"{agg['max']:.3f}s"]
            for path, agg in _span_rollup(spans).items()
        ]
        lines.extend(_format_table(rows, ["path", "calls", "total", "max"]))

    counters = by_kind.get("counter", [])
    if counters:
        lines.append("")
        lines.append("counters")
        rows = [
            [str(r["name"]), f"{r['value']:g}"]
            for r in sorted(counters, key=lambda r: str(r["name"]))
        ]
        lines.extend(_format_table(rows, ["name", "value"]))

    gauges = by_kind.get("gauge", [])
    if gauges:
        last: "OrderedDict[str, object]" = OrderedDict()
        for record in gauges:
            last[str(record["name"])] = record["value"]
        lines.append("")
        lines.append("gauges (last value)")
        rows = [[name, f"{value:g}"] for name, value in last.items()]
        lines.extend(_format_table(rows, ["name", "value"]))

    stages = by_kind.get("stage", [])
    if stages:
        lines.append("")
        lines.append("stages")
        committed = [r for r in stages if r["committed"]]
        detected = sum(int(r["detected"]) for r in stages)  # type: ignore[arg-type]
        final = stages[-1]
        lines.append(
            f"{len(stages)} events ({len(committed)} committed), "
            f"{detected} faults detected, final coverage "
            f"{100 * float(final['coverage']):.1f}% "  # type: ignore[arg-type]
            f"after {final['vectors_total']} vectors"
        )
        by_phase: "OrderedDict[str, List[int]]" = OrderedDict()
        for record in stages:
            by_phase.setdefault(str(record["phase"]), []).append(
                int(record["detected"])  # type: ignore[arg-type]
            )
        rows = [
            [phase, str(len(dets)), str(sum(dets))]
            for phase, dets in by_phase.items()
        ]
        lines.extend(_format_table(rows, ["phase", "events", "detected"]))

    generations = by_kind.get("generation", [])
    if generations:
        lines.append("")
        lines.append("GA generations")
        by_phase = OrderedDict()
        best_by_phase: "OrderedDict[str, float]" = OrderedDict()
        for record in generations:
            phase = str(record.get("phase", "?"))
            by_phase.setdefault(phase, []).append(0)
            best = float(record["best"])  # type: ignore[arg-type]
            best_by_phase[phase] = max(best_by_phase.get(phase, best), best)
        rows = [
            [phase, str(len(members)), f"{best_by_phase[phase]:.3f}"]
            for phase, members in by_phase.items()
        ]
        lines.extend(
            _format_table(rows, ["phase", "generations", "best fitness"])
        )
    return "\n".join(lines)


def metrics_summary(collector) -> str:
    """Render a live :class:`TelemetryCollector` as the ``--metrics`` table."""
    if not getattr(collector, "enabled", False):
        return "telemetry disabled (no-op collector): no metrics recorded"
    return trace_summary(collector.records())


def generation_trajectory(
    records: Sequence[Mapping[str, object]], ga_run: int
) -> List[Mapping[str, object]]:
    """The generation records of one GA run, in generation order."""
    return sorted(
        (r for r in records
         if r.get("kind") == "generation" and r.get("ga_run") == ga_run),
        key=lambda r: int(r["generation"]),  # type: ignore[arg-type]
    )
