"""Command-line interface: ``gatest``.

Subcommands:

* ``run`` — generate tests for a circuit (a ``.bench`` file, a bundled
  circuit name, or an ISCAS89 synthetic stand-in) and optionally save
  the test set;
* ``fsim`` — fault-simulate a test-vector file against a circuit;
* ``synth`` — emit a synthetic profile-matched circuit as ``.bench``;
* ``info`` — print circuit statistics and fault-list size;
* ``serve`` — run the persistent ATPG job service (docs/SERVICE.md);
* ``campaign-worker`` — process leased cells of a distributed campaign
  journal (docs/ROBUSTNESS.md §6);
* ``experiments`` — forwards to :mod:`repro.harness.experiments`.

Test-vector files are plain text: one vector per line, characters
``0``/``1`` (one per primary input), ``#`` comments allowed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .atomicio import atomic_write_text
from .baselines import DeterministicAtpg, RandomTestGenerator
from .circuit import (
    library,
    load_bench,
    synthesize_named,
    write_bench,
)
from .circuit.profiles import ISCAS89_PROFILES
from .core import CheckpointError, GaTestGenerator, TestGenConfig
from .faults import FaultSimulator


def _load_circuit(spec: str, scale: float, seed: int):
    """Resolve a circuit spec: path, builtin name, or profile name."""
    try:
        return library.resolve_spec(spec, scale=scale, seed=seed)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _write_tests(path: Path, vectors: List[List[int]]) -> None:
    lines = ["# one test vector per line, one bit per primary input"]
    lines += ["".join(str(b) for b in v) for v in vectors]
    atomic_write_text(path, "\n".join(lines) + "\n")


def _read_tests(path: Path, n_pi: int) -> List[List[int]]:
    vectors = []
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if len(line) != n_pi or any(ch not in "01" for ch in line):
            raise SystemExit(
                f"error: {path}:{lineno}: expected {n_pi} bits of 0/1, got {line!r}"
            )
        vectors.append([int(ch) for ch in line])
    return vectors


def _make_collector(args: argparse.Namespace):
    """A recording collector when ``--trace``/``--metrics`` asked for one."""
    from .telemetry import TelemetryCollector, get_collector

    if getattr(args, "trace", None) or getattr(args, "metrics", False):
        return TelemetryCollector(source="repro.cli")
    return get_collector()


def _finish_telemetry(args: argparse.Namespace, collector) -> None:
    """Dump the JSONL trace and/or print the metrics summary table."""
    if getattr(args, "trace", None):
        try:
            count = collector.dump(Path(args.trace))
        except OSError as exc:
            raise SystemExit(f"error: cannot write trace {args.trace!r}: {exc}")
        print(f"wrote {count} trace records to {args.trace}")
    if getattr(args, "metrics", False):
        from .telemetry import metrics_summary

        print()
        print(metrics_summary(collector))


def cmd_run(args: argparse.Namespace) -> int:
    """``gatest run``: generate tests with the selected engine."""
    from .telemetry import use

    collector = _make_collector(args)
    with use(collector), collector.span("cli.run", engine=args.engine):
        status = _cmd_run_body(args, collector)
    _finish_telemetry(args, collector)
    return status


def _cmd_run_body(args: argparse.Namespace, collector) -> int:
    circuit = _load_circuit(args.circuit, args.scale, args.seed)
    if args.resume and not args.checkpoint:
        raise SystemExit("error: --resume requires --checkpoint")
    if args.checkpoint and args.engine != "ga":
        raise SystemExit("error: --checkpoint is only supported by --engine ga")
    if args.engine == "ga":
        config = TestGenConfig(
            seed=args.seed,
            selection=args.selection,
            crossover=args.crossover,
            coding=args.coding,
            fault_sample=args.sample,
            fault_model=args.fault_model,
            n_islands=args.islands,
            eval_jobs=args.eval_jobs,
            eval_cache=True if args.eval_cache else None,
            sim_kernel=args.kernel,
        )
        generator = GaTestGenerator(circuit, config, collector=collector)
        # The finally mirrors run()'s own cleanup but also covers the
        # window where run() never starts (and close() is idempotent),
        # so an interrupt can never strand pool workers.
        try:
            result = generator.run(
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
            )
        except CheckpointError as exc:
            raise SystemExit(f"error: {exc}")
        finally:
            generator.close()
        print(result.summary())
        vectors = result.test_sequence
        if args.compact:
            from .core.compaction import compact_test_set

            compaction = compact_test_set(circuit, vectors)
            vectors = compaction.test_sequence
            print(
                f"compacted: {compaction.original_vectors} -> "
                f"{compaction.compacted_vectors} vectors "
                f"({100 * compaction.reduction:.0f}% smaller), "
                f"coverage preserved"
            )
    elif args.engine == "hybrid":
        from .core import HybridAtpg

        config = TestGenConfig(
            seed=args.seed, fault_sample=args.sample,
            eval_jobs=args.eval_jobs,
            eval_cache=True if args.eval_cache else None,
            sim_kernel=args.kernel,
        )
        result = HybridAtpg(circuit, config).run()
        print(result.summary())
        vectors = result.test_sequence
    elif args.engine == "random":
        result = RandomTestGenerator(circuit, seed=args.seed,
                                     max_vectors=args.max_vectors or 1000).run()
        print(
            f"{result.circuit_name}: det {result.detected}/{result.total_faults} "
            f"({100 * result.fault_coverage:.1f}%), vec {result.vectors}"
        )
        vectors = result.test_sequence
    else:  # deterministic
        result = DeterministicAtpg(circuit).run()
        print(
            f"{result.circuit_name}: det {result.detected}/{result.total_faults} "
            f"({100 * result.fault_coverage:.1f}%), vec {result.vectors}, "
            f"untestable {result.untestable}, aborted {result.aborted}"
        )
        vectors = result.test_sequence
    if args.output:
        _write_tests(Path(args.output), vectors)
        print(f"wrote {len(vectors)} vectors to {args.output}")
    return 0


def cmd_fsim(args: argparse.Namespace) -> int:
    """``gatest fsim``: fault-simulate a test-vector file."""
    circuit = _load_circuit(args.circuit, args.scale, args.seed)
    collector = _make_collector(args)
    fsim = FaultSimulator(circuit, collector=collector, kernel=args.kernel)
    vectors = _read_tests(Path(args.tests), circuit.num_inputs)
    with collector.span("cli.fsim", circuit=circuit.name, vectors=len(vectors)):
        fsim.commit(vectors)
    print(
        f"{circuit.name}: {fsim.detected_count}/{fsim.num_faults} faults detected "
        f"({100 * fsim.fault_coverage:.2f}%) by {len(vectors)} vectors"
    )
    if args.verbose:
        for fault in fsim.undetected_faults():
            print(f"  undetected: {fault.describe(circuit)}")
    _finish_telemetry(args, collector)
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    """``gatest synth``: emit a synthetic ISCAS89 stand-in."""
    circuit = synthesize_named(args.name, seed=args.seed, scale=args.scale)
    if args.format == "verilog":
        from .circuit.verilog import write_verilog

        text = write_verilog(circuit)
    else:
        text = write_bench(circuit)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {circuit.name} to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """Convert between .bench and structural Verilog."""
    source = Path(args.input)
    if source.suffix == ".v":
        from .circuit.verilog import load_verilog

        circuit = load_verilog(source)
    else:
        circuit = load_bench(source)
    target = Path(args.output)
    if target.suffix == ".v":
        from .circuit.verilog import save_verilog

        save_verilog(circuit, target)
    else:
        from .circuit import save_bench

        save_bench(circuit, target)
    print(f"converted {source} -> {target} "
          f"({circuit.num_gates} gates, {circuit.num_dffs} FFs)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``gatest info``: print circuit statistics."""
    circuit = _load_circuit(args.circuit, args.scale, args.seed)
    stats = circuit.stats()
    for key, value in stats.items():
        print(f"{key:10s} {value}")
    fsim = FaultSimulator(circuit)
    print(f"{'faults':10s} {fsim.num_faults} (collapsed)")
    return 0


def cmd_campaign_worker(args: argparse.Namespace) -> int:
    """``gatest campaign-worker``: process distributed campaign leases."""
    from .harness.distributed import campaign_worker_main

    try:
        return campaign_worker_main(
            args.journal,
            args.host,
            poll=args.poll,
            max_idle=args.max_idle,
            once=args.once,
        )
    except (CheckpointError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")


def cmd_serve(args: argparse.Namespace) -> int:
    """``gatest serve``: run the ATPG job service (docs/SERVICE.md)."""
    from .service import serve

    return serve(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        workers=args.workers,
        cache_size=args.cache_size,
        queue_max=args.queue_max,
        use_tier=not args.no_tier,
    )


def build_parser() -> argparse.ArgumentParser:
    """The full ``gatest`` argument parser (also introspected by
    ``tools/check_doc_links.py`` to verify documented flags exist)."""
    parser = argparse.ArgumentParser(
        prog="gatest",
        description="GA-based sequential circuit test generation (GATEST reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="generate tests for a circuit")
    run.add_argument("circuit")
    run.add_argument(
        "--engine",
        choices=["ga", "random", "deterministic", "hybrid"],
        default="ga",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--selection", default="tournament")
    run.add_argument("--crossover", default="uniform")
    run.add_argument("--coding", default="binary")
    run.add_argument("--sample", type=int, default=None,
                     help="fault sample size for fitness evaluation")
    run.add_argument("--fault-model", choices=["stuck-at", "transition"],
                     default="stuck-at")
    run.add_argument("--islands", type=int, default=1,
                     help="island-model GA: islands per GA run")
    run.add_argument("--eval-jobs", type=int, default=1, metavar="N",
                     help="fault-sharded candidate evaluation over N worker "
                          "processes (1 = serial; results are identical — "
                          "see docs/PERFORMANCE.md)")
    run.add_argument("--eval-cache", action="store_true",
                     help="force the chromosome evaluation cache on even "
                          "with --eval-jobs 1 (auto-on when N > 1)")
    run.add_argument("--kernel", choices=["interp", "codegen", "numpy", "c"],
                     default=None,
                     help="simulation kernel backend (default: codegen, or "
                          "$REPRO_SIM_KERNEL; results are bit-identical — "
                          "see docs/KERNELS.md)")
    run.add_argument("--checkpoint", default=None, metavar="CKPT",
                     help="write crash-safe run checkpoints here (GA engine "
                          "only; see docs/ROBUSTNESS.md)")
    run.add_argument("--checkpoint-every", type=int, default=8, metavar="N",
                     help="stage events (vectors committed / sequence "
                          "attempts) between checkpoint writes (default 8)")
    run.add_argument("--resume", action="store_true",
                     help="resume from --checkpoint; the finished run is "
                          "bit-identical to an uninterrupted one")
    run.add_argument("--compact", action="store_true",
                     help="statically compact the generated test set")
    run.add_argument("--max-vectors", type=int, default=None)
    run.add_argument("-o", "--output", default=None, help="write test vectors here")
    run.add_argument("--trace", default=None, metavar="OUT.jsonl",
                     help="write a JSONL telemetry trace (docs/TELEMETRY.md)")
    run.add_argument("--metrics", action="store_true",
                     help="print a telemetry metrics summary table")
    run.set_defaults(func=cmd_run)

    fsim = sub.add_parser("fsim", help="fault-simulate a test file")
    fsim.add_argument("circuit")
    fsim.add_argument("tests")
    fsim.add_argument("--seed", type=int, default=0)
    fsim.add_argument("--scale", type=float, default=1.0)
    fsim.add_argument("-v", "--verbose", action="store_true")
    fsim.add_argument("--kernel", choices=["interp", "codegen", "numpy", "c"],
                      default=None,
                      help="simulation kernel backend (default: codegen; "
                           "see docs/KERNELS.md)")
    fsim.add_argument("--trace", default=None, metavar="OUT.jsonl",
                      help="write a JSONL telemetry trace (docs/TELEMETRY.md)")
    fsim.add_argument("--metrics", action="store_true",
                      help="print a telemetry metrics summary table")
    fsim.set_defaults(func=cmd_fsim)

    synth = sub.add_parser("synth", help="emit a synthetic ISCAS89 stand-in")
    synth.add_argument("name", choices=sorted(ISCAS89_PROFILES))
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--scale", type=float, default=1.0)
    synth.add_argument("--format", choices=["bench", "verilog"], default="bench")
    synth.add_argument("-o", "--output", default=None)
    synth.set_defaults(func=cmd_synth)

    convert = sub.add_parser(
        "convert", help="convert between .bench and structural Verilog (.v)"
    )
    convert.add_argument("input")
    convert.add_argument("output")
    convert.set_defaults(func=cmd_convert)

    info = sub.add_parser("info", help="circuit statistics")
    info.add_argument("circuit")
    info.add_argument("--seed", type=int, default=0)
    info.add_argument("--scale", type=float, default=1.0)
    info.set_defaults(func=cmd_info)

    worker = sub.add_parser(
        "campaign-worker",
        help="process leased cells of a distributed campaign journal "
             "(start one per host named in experiments --workers-from; "
             "see docs/ROBUSTNESS.md)",
    )
    worker.add_argument("--journal", required=True, metavar="J.jsonl",
                        help="the shared campaign journal (the coordinator "
                             "creates it; this worker appends results)")
    worker.add_argument("--host", required=True, metavar="NAME",
                        help="this worker's host name — it claims exactly "
                             "the leases addressed to NAME")
    worker.add_argument("--poll", type=float, default=0.1, metavar="S",
                        help="seconds between journal polls (default 0.1)")
    worker.add_argument("--max-idle", type=float, default=60.0, metavar="S",
                        help="exit 0 after S seconds with nothing claimable "
                             "(default 60; also bounds the wait for the "
                             "journal to appear)")
    worker.add_argument("--once", action="store_true",
                        help="exit as soon as one scan finds nothing "
                             "claimable instead of idling")
    worker.set_defaults(func=cmd_campaign_worker)

    serve = sub.add_parser(
        "serve", help="run the persistent ATPG job service (docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8337,
                       help="port to bind; 0 picks an ephemeral port and "
                            "prints it (default 8337)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="job ledger + run checkpoints live here; reuse "
                            "the directory across restarts to recover "
                            "unfinished jobs (default: throwaway tempdir)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="job worker threads (default: "
                            "$REPRO_SERVICE_WORKERS or 2)")
    serve.add_argument("--cache-size", type=int, default=None, metavar="N",
                       help="max resident warm simulators (default: "
                            "$REPRO_SERVICE_CACHE_SIZE or 8)")
    serve.add_argument("--queue-max", type=int, default=None, metavar="N",
                       help="max queued jobs before submissions are "
                            "rejected with 429 (default: "
                            "$REPRO_SERVICE_QUEUE_MAX or unbounded)")
    serve.add_argument("--no-tier", action="store_true",
                       help="execute run jobs in-thread instead of the "
                            "fault-isolated process tier (bit-identical "
                            "results; loses crash/hang isolation)")
    serve.set_defaults(func=cmd_serve)

    sub.add_parser(
        "experiments",
        help="regenerate the paper's tables (forwards to "
             "repro.harness.experiments; supports crash-safe campaigns "
             "via --journal/--resume and seed parallelism via --jobs)",
        add_help=False,
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (see module docstring for the subcommands)."""
    # argparse's REMAINDER handling of leading options is unreliable, so
    # the experiments passthrough is dispatched before parsing.
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "experiments":
        from .harness.experiments import main as experiments_main

        return experiments_main(raw[1:])

    args = build_parser().parse_args(raw)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
