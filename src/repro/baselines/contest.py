"""CONTEST-like baseline: cost-directed search over unit-Hamming moves.

The paper's introduction contrasts GATEST with the earlier
simulation-based generators of Snethen [6] and Agrawal/Cheng/Agrawal
(CONTEST) [7]: those consider only candidate vectors at Hamming distance
one from the previous vector, steered by cost functions computed during
fault simulation.  This module provides that comparator: greedy
hill-climbing over single-bit flips with GATEST's own phase observables
as the cost function (flip-flops initialized, then faults detected with
fault-effect propagation as the tiebreak).

The contrast it isolates is *search breadth*: the GA explores a
population of arbitrary vectors per time frame, the hill climber only
``n_pi + 1`` neighbours — the paper's explanation for why
mutation-based generators produce much longer test sets.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Union

from ..circuit.netlist import Circuit
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit


@dataclass
class ContestResult:
    """Outcome of a CONTEST-like run."""

    circuit_name: str
    test_sequence: List[List[int]]
    detected: int
    total_faults: int
    elapsed_seconds: float
    evaluations: int

    @property
    def vectors(self) -> int:
        """Test-set length."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.detected / self.total_faults if self.total_faults else 0.0


class ContestLikeGenerator:
    """Greedy unit-Hamming-distance test generation."""

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        seed: int = 0,
        stagnation_limit: Optional[int] = None,
        max_vectors: int = 5_000,
    ) -> None:
        compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.compiled = compiled
        self.rng = random.Random(seed)
        depth = max(1, compiled.circuit.sequential_depth())
        self.stagnation_limit = (
            stagnation_limit if stagnation_limit is not None else 8 * depth
        )
        self.max_vectors = max_vectors
        self.fsim = FaultSimulator(compiled)
        self.evaluations = 0

    def _cost(self, evaluation) -> float:
        """Higher is better: initialization, then detection + propagation."""
        num_ffs = max(1, self.compiled.num_ffs)
        if not self.fsim.good_state.all_set:
            return evaluation.ffs_set + evaluation.ffs_changed / num_ffs
        denominator = max(1, evaluation.num_faults_simulated * num_ffs)
        return evaluation.detected + evaluation.prop_final / denominator

    def run(self) -> ContestResult:
        """Walk the input space until coverage stagnates or budget ends."""
        start = time.perf_counter()
        compiled = self.compiled
        n_pi = compiled.num_pis
        test_sequence: List[List[int]] = []
        current = [self.rng.randint(0, 1) for _ in range(n_pi)]
        stagnant = 0
        while (
            self.fsim.active
            and stagnant < self.stagnation_limit
            and len(test_sequence) < self.max_vectors
        ):
            # Candidates: the previous vector and all unit flips of it.
            candidates = [list(current)]
            for bit in range(n_pi):
                flipped = list(current)
                flipped[bit] ^= 1
                candidates.append(flipped)
            evaluations = self.fsim.evaluate_batch([[c] for c in candidates])
            self.evaluations += len(candidates)
            scores = [self._cost(e) for e in evaluations]
            best = max(range(len(candidates)), key=lambda i: scores[i])
            # Deterministic tie-break away from "no change" to keep the
            # walk moving through the input space.
            if best == 0 and any(
                scores[i] == scores[0] for i in range(1, len(candidates))
            ):
                best = next(
                    i for i in range(1, len(candidates)) if scores[i] == scores[0]
                )
            current = candidates[best]
            commit = self.fsim.commit([current])
            test_sequence.append(list(current))
            stagnant = 0 if commit.detected_count > 0 else stagnant + 1
        return ContestResult(
            circuit_name=compiled.circuit.name,
            test_sequence=test_sequence,
            detected=self.fsim.detected_count,
            total_faults=self.fsim.num_faults,
            elapsed_seconds=time.perf_counter() - start,
            evaluations=self.evaluations,
        )
