"""PODEM test generation over an iterative-array (time-frame) expansion.

This powers the deterministic, fault-oriented baseline (the paper's
HITEC comparator — see DESIGN.md §3).  A sequential circuit is unrolled
into ``n`` combinational time frames; the target fault is injected into
*every* frame copy; the frame-0 present state is unknown and
unassignable (so any test found is *self-initializing*, HITEC's
conservative X-mode); and classic PODEM searches the frame PIs:

* objective — activate the fault, then extend the D-frontier;
* backtrace — walk an X-path from the objective to an assignable PI,
  inverting through inverting gates;
* imply — full 3-valued resimulation of good and faulty machines;
* backtrack — flip the last untried decision, bounded by a limit.

The implementation favors clarity over speed (full resimulation per
decision); the GA generator is the fast path of this project, the
deterministic engine is the comparator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import GateType, X, eval_gate_scalar
from ..circuit.netlist import Circuit
from ..faults.model import STEM, Fault

#: Non-controlling input value per gate family (for D-frontier objectives).
_NONCONTROLLING = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
}


@dataclass
class Unrolled:
    """A sequential circuit expanded into ``frames`` combinational copies."""

    circuit: Circuit                     # purely combinational view
    frames: int
    frame_pis: List[List[int]]           # per frame, unrolled PI node ids
    xstate_nodes: List[int]              # frame-0 state nodes (unassignable)
    observables: List[int]               # all frames' PO copies
    copies_of: Dict[int, List[int]]      # original node id -> copies per frame

    def fault_copies(self, fault: Fault) -> List[Fault]:
        """The fault's injection sites in the unrolled circuit."""
        return [
            Fault(copy, fault.pin, fault.stuck_at)
            for copy in self.copies_of[fault.node]
        ]


def unroll(circuit: Circuit, frames: int) -> Unrolled:
    """Expand ``circuit`` into an iterative combinational array.

    Frame-0 flip-flop outputs become pseudo-inputs held at X; frame-f
    (f > 0) flip-flop outputs become buffers of the previous frame's D
    signal.  DFF *nodes* are preserved as BUFF copies so that faults on
    flip-flop outputs/pins map onto well-defined unrolled sites.
    """
    if frames < 1:
        raise ValueError("need at least one frame")
    out = Circuit(f"{circuit.name}[x{frames}]")
    copies_of: Dict[int, List[int]] = {n: [] for n in range(circuit.num_nodes)}
    frame_pis: List[List[int]] = []
    xstate_nodes: List[int] = []
    observables: List[int] = []

    def cname(node_id: int, frame: int) -> str:
        return f"{circuit.node_names[node_id]}@{frame}"

    for frame in range(frames):
        pis = []
        for pi in circuit.inputs:
            node = out.add_input(cname(pi, frame))
            copies_of[pi].append(node)
            pis.append(node)
        frame_pis.append(pis)
        for ff in circuit.dffs:
            if frame == 0:
                node = out.add_input(cname(ff, 0))
                xstate_nodes.append(node)
            else:
                d_node = circuit.fanins[ff][0]
                node = out.add_gate(
                    cname(ff, frame), GateType.BUFF, [cname(d_node, frame - 1)]
                )
            copies_of[ff].append(node)
        for node_id in circuit.topo_order:
            gate_type = circuit.node_types[node_id]
            fanins = [cname(f, frame) for f in circuit.fanins[node_id]]
            node = out.add_gate(cname(node_id, frame), gate_type, fanins)
            copies_of[node_id].append(node)
        for po in circuit.outputs:
            observables.append(out.mark_output(cname(po, frame)))
    return Unrolled(
        circuit=out.finalize(),
        frames=frames,
        frame_pis=frame_pis,
        xstate_nodes=xstate_nodes,
        observables=observables,
        copies_of=copies_of,
    )


class PodemStatus(enum.Enum):
    """How one PODEM search ended."""

    SUCCESS = "success"
    UNTESTABLE = "untestable"   # search space exhausted within this window
    ABORTED = "aborted"         # backtrack limit hit


@dataclass
class PodemResult:
    """Outcome of one PODEM search (assignment is PI node -> bit)."""

    status: PodemStatus
    assignment: Dict[int, int] = field(default_factory=dict)  # PI node -> bit
    backtracks: int = 0
    implications: int = 0

    @property
    def found(self) -> bool:
        """True when a test was generated."""
        return self.status is PodemStatus.SUCCESS


class Podem:
    """One PODEM search for one fault on one (possibly unrolled) circuit."""

    def __init__(
        self,
        circuit: Circuit,
        fault_sites: Sequence[Fault],
        assignable: Sequence[int],
        observables: Sequence[int],
        backtrack_limit: int = 1000,
    ) -> None:
        if not fault_sites:
            raise ValueError("need at least one fault site")
        self.circuit = circuit
        self.fault_sites = list(fault_sites)
        self.assignable = list(assignable)
        self._assignable_set = set(assignable)
        self.observables = list(observables)
        self.backtrack_limit = backtrack_limit
        self.good: List[int] = []
        self.faulty: List[int] = []
        self._stem_sites = {f.node: f.stuck_at for f in fault_sites if f.pin == STEM}
        self._pin_sites = {
            (f.node, f.pin): f.stuck_at for f in fault_sites if f.pin != STEM
        }
        self._has_support = self._compute_support()
        self.implications = 0

    # ------------------------------------------------------------------

    def _compute_support(self) -> List[bool]:
        """Per node: does its input cone contain an assignable input?"""
        circuit = self.circuit
        support = [False] * circuit.num_nodes
        for node in self.assignable:
            support[node] = True
        for node_id in circuit.topo_order:
            support[node_id] = any(support[f] for f in circuit.fanins[node_id])
        return support

    def _simulate(self, assignment: Dict[int, int]) -> None:
        """Full 3-valued resimulation of good and faulty machines."""
        circuit = self.circuit
        n = circuit.num_nodes
        good = [X] * n
        faulty = [X] * n
        for node, value in assignment.items():
            good[node] = value
            faulty[node] = value
        for node, sa in self._stem_sites.items():
            if circuit.node_types[node] is GateType.INPUT:
                faulty[node] = sa
        for node_id in circuit.topo_order:
            fanins = circuit.fanins[node_id]
            gate_type = circuit.node_types[node_id]
            good[node_id] = eval_gate_scalar(
                gate_type, (good[f] for f in fanins)
            )
            fvals = []
            for pin, f in enumerate(fanins):
                sa = self._pin_sites.get((node_id, pin))
                fvals.append(faulty[f] if sa is None else sa)
            value = eval_gate_scalar(gate_type, fvals)
            sa = self._stem_sites.get(node_id)
            faulty[node_id] = value if sa is None else sa
        self.good = good
        self.faulty = faulty
        self.implications += 1

    # ------------------------------------------------------------------

    def _detected(self) -> bool:
        return any(
            self.good[o] != X
            and self.faulty[o] != X
            and self.good[o] != self.faulty[o]
            for o in self.observables
        )

    def _pin_d_sites(self) -> List[int]:
        """Faulted gates whose pin currently carries a *virtual* D.

        A pin fault s-a-v is excited once its driver's good value is the
        opposite of v; the difference then lives on the pin itself (no
        node shows it), so the faulted gate must join the D-frontier
        explicitly.
        """
        gates = []
        for (gate, pin), sa in self._pin_sites.items():
            driver = self.circuit.fanins[gate][pin]
            if self.good[driver] != X and self.good[driver] == 1 - sa:
                gates.append(gate)
        return gates

    def _d_frontier(self) -> List[int]:
        """Gates with an unresolved output and a D/D' on some input."""
        circuit = self.circuit
        frontier = []
        for node_id in circuit.topo_order:
            # A gate is on the frontier while its composite output is not
            # yet resolved (at least one plane X) but some input already
            # carries a definite good/faulty difference (a D or D').
            if self.good[node_id] != X and self.faulty[node_id] != X:
                continue
            for f in circuit.fanins[node_id]:
                if (
                    self.good[f] != X
                    and self.faulty[f] != X
                    and self.good[f] != self.faulty[f]
                ):
                    frontier.append(node_id)
                    break
        for gate in self._pin_d_sites():
            if (
                (self.good[gate] == X or self.faulty[gate] == X)
                and gate not in frontier
            ):
                frontier.append(gate)
        return frontier

    def _activated(self) -> bool:
        """Is a D/D' present anywhere (including on a faulted pin)?"""
        if any(
            self.good[n] != X and self.faulty[n] != X and self.good[n] != self.faulty[n]
            for n in range(self.circuit.num_nodes)
        ):
            return True
        return bool(self._pin_d_sites())

    def _activation_objective(self) -> Optional[Tuple[int, int]]:
        """Objective that sets some fault site's good value opposite the
        stuck value (activating the fault)."""
        for fault in self.fault_sites:
            if fault.pin == STEM:
                target, want = fault.node, 1 - fault.stuck_at
                if self.circuit.node_types[target] is GateType.INPUT:
                    if self.good[target] == X and target in self._assignable_set:
                        return (target, want)
                    continue
                # Objective applies to the *good* value of the node; the
                # faulty plane is pinned by injection.
                if self.good[target] == X and self._has_support[target]:
                    return (target, want)
            else:
                driver = self.circuit.fanins[fault.node][fault.pin]
                want = 1 - fault.stuck_at
                if self.good[driver] == X and self._has_support[driver]:
                    return (driver, want)
        return None

    def _propagation_objective(self) -> Optional[Tuple[int, int]]:
        """Pick a D-frontier gate and demand a non-controlling side value."""
        for gate in self._d_frontier():
            gate_type = self.circuit.node_types[gate]
            noncontrolling = _NONCONTROLLING.get(gate_type)
            for f in self.circuit.fanins[gate]:
                if self.good[f] == X and self._has_support[f]:
                    want = noncontrolling if noncontrolling is not None else 1
                    return (f, want)
        return None

    def _objective(self) -> Optional[Tuple[int, int]]:
        if not self._activated():
            return self._activation_objective()
        return self._propagation_objective()

    def _backtrace(self, node: int, value: int) -> Optional[Tuple[int, int]]:
        """Walk an X-path from (node, value) to an assignable input."""
        circuit = self.circuit
        guard = 0
        while node not in self._assignable_set:
            guard += 1
            if guard > circuit.num_nodes:
                return None
            gate_type = circuit.node_types[node]
            if gate_type is GateType.INPUT:
                return None  # unassignable pseudo-input (X state)
            # Choose an X-valued fanin with assignable support.
            candidates = [
                f for f in circuit.fanins[node]
                if self.good[f] == X and self._has_support[f]
            ]
            if not candidates:
                return None
            # Easiest-first heuristic: lowest level (closest to inputs).
            chosen = min(candidates, key=lambda f: circuit.levels[f])
            if gate_type in (GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR):
                value = 1 - value
            elif gate_type in (GateType.XOR,):
                # Parity through XOR depends on siblings; aim for `value`
                # adjusted by known sibling parity.
                parity = 0
                for f in circuit.fanins[node]:
                    if f != chosen and self.good[f] == 1:
                        parity ^= 1
                value = value ^ parity
            node = chosen
        if self.good[node] != X:
            return None
        return (node, value)

    # ------------------------------------------------------------------

    def run(self) -> PodemResult:
        """Execute the PODEM search."""
        assignment: Dict[int, int] = {}
        #: decision stack: (pi node, value, tried_both)
        stack: List[Tuple[int, int, bool]] = []
        backtracks = 0
        self._simulate(assignment)

        while True:
            if self._detected():
                return PodemResult(
                    status=PodemStatus.SUCCESS,
                    assignment=dict(assignment),
                    backtracks=backtracks,
                    implications=self.implications,
                )
            objective = self._objective()
            target = None
            if objective is not None:
                target = self._backtrace(*objective)
            if target is None:
                # Dead end: backtrack.
                while stack:
                    pi, value, tried_both = stack.pop()
                    del assignment[pi]
                    if not tried_both:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemResult(
                                status=PodemStatus.ABORTED,
                                backtracks=backtracks,
                                implications=self.implications,
                            )
                        assignment[pi] = 1 - value
                        stack.append((pi, 1 - value, True))
                        self._simulate(assignment)
                        break
                else:
                    return PodemResult(
                        status=PodemStatus.UNTESTABLE,
                        backtracks=backtracks,
                        implications=self.implications,
                    )
                continue
            pi, value = target
            assignment[pi] = value
            stack.append((pi, value, False))
            self._simulate(assignment)
            # Early prune: no D anywhere and the fault can no longer be
            # activated -> immediate backtrack next loop (objective None).
