"""Weighted-random test generation (the paper's refs [3, 4, 5]).

The second family of simulation-based generators the paper's
introduction surveys: instead of uniform random vectors, each primary
input gets its own probability of being 1, tuned so that hard-to-reach
internal values become likelier.  Two weight sources are provided:

* **static** — derived from SCOAP controllabilities: a PI leans toward
  the value that the circuit's hard-to-control nodes need (inputs that
  mostly feed AND trees drift high, NOR trees drift low);
* **adaptive** — the Schnurmann-style feedback loop: start uniform,
  and whenever coverage stalls, re-weight toward the input values that
  recent *detecting* vectors used (a light-weight multi-distribution
  scheme in the spirit of ref [5]).

Like all the baselines, detection accounting runs through the shared
fault simulator so comparisons against GATEST are apples to apples.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Union

from ..circuit.netlist import Circuit
from ..circuit.testability import analyze
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit


@dataclass
class WeightedRandomResult:
    """Outcome of a weighted-random run."""

    circuit_name: str
    test_sequence: List[List[int]]
    detected: int
    total_faults: int
    elapsed_seconds: float
    final_weights: List[float]

    @property
    def vectors(self) -> int:
        """Test-set length."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.detected / self.total_faults if self.total_faults else 0.0


def scoap_weights(circuit: Circuit, strength: float = 0.25) -> List[float]:
    """Static per-PI one-probabilities from SCOAP controllabilities.

    For each PI, compare the total SCOAP cost of the circuit under the
    convention that the PI is mostly 1 vs mostly 0 — approximated by the
    PI's direct fanout gate types — and shift the weight by up to
    ``strength`` away from 0.5.
    """
    report = analyze(circuit)
    weights = []
    for pi in circuit.inputs:
        pull = 0.0
        for load in circuit.fanouts[pi]:
            gate_type = circuit.node_types[load].value
            # AND-family loads are easier to exercise with 1s on their
            # side inputs; OR-family with 0s.
            if gate_type in ("and", "nand"):
                pull += 1.0
            elif gate_type in ("or", "nor"):
                pull -= 1.0
        fanout = max(1, len(circuit.fanouts[pi]))
        weights.append(min(0.9, max(0.1, 0.5 + strength * pull / fanout)))
    return weights


class WeightedRandomGenerator:
    """Adaptive weighted-random TPG with a stagnation-driven re-weighter."""

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        seed: int = 0,
        max_vectors: int = 2_000,
        stagnation_limit: int = 64,
        weights: Optional[List[float]] = None,
        adapt: bool = True,
        batch: int = 16,
    ) -> None:
        compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.compiled = compiled
        self.rng = random.Random(seed)
        self.max_vectors = max_vectors
        self.stagnation_limit = stagnation_limit
        self.adapt = adapt
        self.batch = max(1, batch)
        if weights is None:
            weights = scoap_weights(compiled.circuit)
        if len(weights) != compiled.num_pis:
            raise ValueError(
                f"{len(weights)} weights for {compiled.num_pis} inputs"
            )
        self.weights = list(weights)
        self.fsim = FaultSimulator(compiled)

    def _vector(self) -> List[int]:
        return [
            1 if self.rng.random() < w else 0 for w in self.weights
        ]

    def _reweight(self, detecting_vectors: List[List[int]]) -> None:
        """Blend the weights toward the bit statistics of recent winners,
        then nudge back toward 0.5 so no input pins at a rail."""
        if not detecting_vectors:
            # Nothing worked recently: relax toward uniform to escape a
            # counterproductive distribution.
            self.weights = [0.5 + 0.5 * (w - 0.5) for w in self.weights]
            return
        n = len(detecting_vectors)
        for j in range(len(self.weights)):
            ones = sum(v[j] for v in detecting_vectors) / n
            blended = 0.5 * self.weights[j] + 0.5 * ones
            self.weights[j] = min(0.9, max(0.1, blended))

    def run(self) -> WeightedRandomResult:
        """Generate until the vector budget or the stagnation limit."""
        start = time.perf_counter()
        test_sequence: List[List[int]] = []
        stagnant = 0
        recent_detecting: List[List[int]] = []
        while len(test_sequence) < self.max_vectors and self.fsim.active:
            size = min(self.batch, self.max_vectors - len(test_sequence))
            vectors = [self._vector() for _ in range(size)]
            before = self.fsim.detected_count
            for vector in vectors:
                detected = self.fsim.commit([vector]).detected_count
                test_sequence.append(vector)
                if detected:
                    recent_detecting.append(vector)
            if self.fsim.detected_count > before:
                stagnant = 0
            else:
                stagnant += size
                if self.adapt:
                    self._reweight(recent_detecting[-16:])
                if stagnant >= self.stagnation_limit:
                    break
        return WeightedRandomResult(
            circuit_name=self.compiled.circuit.name,
            test_sequence=test_sequence,
            detected=self.fsim.detected_count,
            total_faults=self.fsim.num_faults,
            elapsed_seconds=time.perf_counter() - start,
            final_weights=list(self.weights),
        )
