"""Random test generation baseline.

The simplest simulation-based comparator: apply random vectors, fault
simulate, keep everything.  Used by the ablation bench to show what the
GA buys over random search at a matched simulation budget
(DESIGN.md §5), and by the test suite as a coverage floor.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Union

from ..circuit.netlist import Circuit
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit


@dataclass
class RandomTpgResult:
    """Outcome of a random test-generation run."""

    circuit_name: str
    test_sequence: List[List[int]]
    detected: int
    total_faults: int
    elapsed_seconds: float

    @property
    def vectors(self) -> int:
        """Test-set length."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.detected / self.total_faults if self.total_faults else 0.0


class RandomTestGenerator:
    """Apply uniform random vectors until a budget or stagnation limit.

    ``stagnation_limit`` mirrors GATEST's progress limit: generation
    stops after that many consecutive vectors detect nothing new (or
    when ``max_vectors`` is reached, whichever is first).
    """

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        seed: int = 0,
        max_vectors: int = 10_000,
        stagnation_limit: Optional[int] = None,
        batch: int = 32,
    ) -> None:
        compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.compiled = compiled
        self.rng = random.Random(seed)
        self.max_vectors = max_vectors
        self.stagnation_limit = stagnation_limit
        self.batch = max(1, batch)
        self.fsim = FaultSimulator(compiled)

    def run(self) -> RandomTpgResult:
        """Apply random vectors until the budget or stagnation limit."""
        start = time.perf_counter()
        n_pi = self.compiled.num_pis
        test_sequence: List[List[int]] = []
        stagnant = 0
        while len(test_sequence) < self.max_vectors and self.fsim.active:
            size = min(self.batch, self.max_vectors - len(test_sequence))
            vectors = [
                [self.rng.randint(0, 1) for _ in range(n_pi)] for _ in range(size)
            ]
            commit = self.fsim.commit(vectors)
            test_sequence.extend(vectors)
            if commit.detected_count > 0:
                stagnant = 0
            else:
                stagnant += size
                if (
                    self.stagnation_limit is not None
                    and stagnant >= self.stagnation_limit
                ):
                    break
        return RandomTpgResult(
            circuit_name=self.compiled.circuit.name,
            test_sequence=test_sequence,
            detected=self.fsim.detected_count,
            total_faults=self.fsim.num_faults,
            elapsed_seconds=time.perf_counter() - start,
        )
