"""Comparator test generators: random, CRIS-like, and deterministic ATPG."""

from .contest import ContestLikeGenerator, ContestResult
from .cris import CrisLikeGenerator, CrisResult
from .deterministic import DeterministicAtpg, DeterministicResult
from .podem import Podem, PodemResult, PodemStatus, Unrolled, unroll
from .random_tpg import RandomTestGenerator, RandomTpgResult
from .weighted_random import WeightedRandomGenerator, WeightedRandomResult, scoap_weights

__all__ = [
    "ContestLikeGenerator",
    "ContestResult",
    "CrisLikeGenerator",
    "CrisResult",
    "DeterministicAtpg",
    "DeterministicResult",
    "Podem",
    "PodemResult",
    "PodemStatus",
    "RandomTestGenerator",
    "WeightedRandomGenerator",
    "WeightedRandomResult",
    "scoap_weights",
    "RandomTpgResult",
    "Unrolled",
    "unroll",
]
