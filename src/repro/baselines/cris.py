"""CRIS-like baseline: GA test cultivation with logic-simulation fitness.

CRIS [Saab, Saab & Abraham, ICCAD 1992] evolves test sequences using a
*logic* simulator only — candidate fitness is derived from circuit
activity, never from actual fault detection.  The paper under
reproduction criticizes exactly this choice ("often had lower fault
coverages than ... a deterministic test generator") and uses fault
simulation instead.  This module provides the matching comparator: the
same GA machinery as GATEST, but with fitness =

    flip-flops set  +  node activity (toggles) per frame,

measured on the good machine alone.  Faults are simulated only when a
chosen test is *committed* (to drop detected faults and report
coverage), mirroring how CRIS used fault simulation solely for final
grading.  The heuristic-crossover specifics of CRIS are intentionally
not modelled — the point of the comparison is the fitness signal, which
is the design axis the paper isolates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Union

from ..circuit.netlist import Circuit
from ..faults.simulator import FaultSimulator
from ..ga.chromosome import make_coding
from ..ga.engine import GAParams, GeneticAlgorithm
from ..sim.compile import CompiledCircuit, compile_circuit
from ..sim.logic3 import PatternSimulator


@dataclass
class CrisResult:
    """Outcome of a CRIS-like run."""

    circuit_name: str
    test_sequence: List[List[int]]
    detected: int
    total_faults: int
    elapsed_seconds: float
    ga_evaluations: int

    @property
    def vectors(self) -> int:
        """Test-set length."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.detected / self.total_faults if self.total_faults else 0.0


class CrisLikeGenerator:
    """Sequence-evolving GA whose fitness never sees fault detection."""

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        seed: int = 0,
        population_size: int = 32,
        generations: int = 8,
        sequence_length: Optional[int] = None,
        stagnation_limit: int = 8,
        max_vectors: int = 2_000,
    ) -> None:
        compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.compiled = compiled
        self.rng = random.Random(seed)
        depth = max(1, compiled.circuit.sequential_depth())
        self.sequence_length = sequence_length or depth
        self.population_size = population_size
        self.generations = generations
        self.stagnation_limit = stagnation_limit
        self.max_vectors = max_vectors
        self.fsim = FaultSimulator(compiled)
        self.ga_evaluations = 0

    def _activity_evaluator(self, coding):
        """Fitness = FFs set + average node toggles per frame (good machine)."""

        def evaluate(chromosomes):
            n = len(chromosomes)
            sim = PatternSimulator(self.compiled, n_slots=n)
            sim.begin(self.fsim.good_state)
            phenotypes = [coding.decode(c) for c in chromosomes]
            activity = [0.0] * n
            for frame in range(self.sequence_length):
                stats = sim.step(
                    [phenotypes[s][frame] for s in range(n)], count_events=True
                )
                for s in range(n):
                    activity[s] += stats.events[s]
            num_nodes = self.compiled.num_nodes
            fitnesses = []
            for s in range(n):
                ffs_set = sum(
                    1 for v in sim.extract_state(s).ff_values if v != 2
                )
                fitnesses.append(ffs_set + activity[s] / max(1, num_nodes))
            return fitnesses

        return evaluate

    def run(self) -> CrisResult:
        """Evolve and commit sequences until activity stops paying off."""
        start = time.perf_counter()
        coding = make_coding("binary", self.compiled.num_pis, self.sequence_length)
        test_sequence: List[List[int]] = []
        stagnant = 0
        while (
            self.fsim.active
            and stagnant < self.stagnation_limit
            and len(test_sequence) + self.sequence_length <= self.max_vectors
        ):
            params = GAParams(
                population_size=self.population_size,
                generations=self.generations,
                selection="tournament",
                crossover="uniform",
                mutation_rate=1 / max(8, coding.length),
            )
            ga = GeneticAlgorithm(
                coding, self._activity_evaluator(coding), params, rng=self.rng
            )
            result = ga.run()
            self.ga_evaluations += result.evaluations
            sequence = coding.decode(result.best.chromosome)
            commit = self.fsim.commit(sequence)
            test_sequence.extend(sequence)
            stagnant = 0 if commit.detected_count > 0 else stagnant + 1
        return CrisResult(
            circuit_name=self.compiled.circuit.name,
            test_sequence=test_sequence,
            detected=self.fsim.detected_count,
            total_faults=self.fsim.num_faults,
            elapsed_seconds=time.perf_counter() - start,
            ga_evaluations=self.ga_evaluations,
        )
