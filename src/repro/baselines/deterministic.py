"""Deterministic fault-oriented sequential ATPG (the HITEC comparator).

For every undetected fault, the engine searches for a self-initializing
test sequence by running PODEM on iterative-array expansions of
increasing length (1, 2, 4, ... frames up to a per-circuit window).
After each successful generation the sequence is fault-simulated against
the whole remaining fault list so that one sequence retires many faults
(standard deterministic-ATPG flow).  Faults whose search space is
exhausted in the largest window are classified *untestable-in-window*;
searches that hit the backtrack limit are *aborted* — mirroring how
HITEC reports untestable vs aborted faults.

This baseline exists for Table 2's comparison columns: it exhibits the
deterministic cost profile the paper contrasts GATEST against (long run
times on sequential circuits, shorter test sets, ability to prove
untestability), not HITEC's exact heuristics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuit.netlist import Circuit
from ..faults.model import Fault, FaultStatus
from ..faults.simulator import FaultSimulator
from ..sim.compile import CompiledCircuit, compile_circuit
from .podem import Podem, PodemStatus, Unrolled, unroll


@dataclass
class DeterministicResult:
    """Outcome of a deterministic ATPG run."""

    circuit_name: str
    test_sequence: List[List[int]]
    detected: int
    total_faults: int
    untestable: int              # proven untestable within the frame window
    aborted: int                 # backtrack limit hit
    elapsed_seconds: float
    backtracks: int
    targeted: int                # faults PODEM actually ran on

    @property
    def vectors(self) -> int:
        """Test-set length."""
        return len(self.test_sequence)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the fault list."""
        return self.detected / self.total_faults if self.total_faults else 0.0


class DeterministicAtpg:
    """HITEC-like time-frame-expansion test generator."""

    def __init__(
        self,
        circuit: Union[Circuit, CompiledCircuit],
        faults: Optional[List[Fault]] = None,
        max_frames: Optional[int] = None,
        backtrack_limit: int = 400,
        seed_vectors: int = 0,
    ) -> None:
        compiled = (
            circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        )
        self.compiled = compiled
        self.circuit = compiled.circuit
        depth = max(1, self.circuit.sequential_depth())
        # Window must allow initialize-then-walk-then-observe sequences,
        # so keep a floor even for depth-1 circuits.
        self.max_frames = (
            max_frames if max_frames is not None else min(max(4 * depth, 8), 64)
        )
        self.backtrack_limit = backtrack_limit
        self.fsim = FaultSimulator(compiled, faults=faults)
        self.seed_vectors = seed_vectors
        self._unroll_cache: Dict[int, Unrolled] = {}

    def _unrolled(self, frames: int) -> Unrolled:
        if frames not in self._unroll_cache:
            self._unroll_cache[frames] = unroll(self.circuit, frames)
        return self._unroll_cache[frames]

    def _frame_schedule(self) -> List[int]:
        frames = []
        n = 1
        while n < self.max_frames:
            frames.append(n)
            n *= 2
        frames.append(self.max_frames)
        return sorted(set(frames))

    def _assignment_to_sequence(
        self, unrolled: Unrolled, assignment: Dict[int, int]
    ) -> List[List[int]]:
        """Convert a PODEM PI assignment to a vector sequence.

        Unassigned bits are filled with 0 (any value preserves the test:
        three-valued simulation guaranteed detection with them at X).
        """
        sequence = []
        for frame_pis in unrolled.frame_pis:
            sequence.append([assignment.get(pi, 0) for pi in frame_pis])
        return sequence

    def run(self) -> DeterministicResult:
        """Target every fault; returns the aggregate result."""
        start = time.perf_counter()
        test_sequence: List[List[int]] = []
        untestable = 0
        aborted = 0
        backtracks = 0
        targeted = 0

        if self.seed_vectors:
            # Optional random preamble to cheaply knock out easy faults
            # (both HITEC and common flows do this).
            import random as _random

            rng = _random.Random(0)
            vectors = [
                [rng.randint(0, 1) for _ in range(self.compiled.num_pis)]
                for _ in range(self.seed_vectors)
            ]
            self.fsim.commit(vectors)
            test_sequence.extend(vectors)

        schedule = self._frame_schedule()
        # Iterate over a stable list; the active list shrinks as sequences
        # retire additional faults.
        pending = list(self.fsim.active)
        for fault_id in pending:
            if self.fsim.status[fault_id] is FaultStatus.DETECTED:
                continue
            fault = self.fsim.faults[fault_id]
            targeted += 1
            outcome = None
            for frames in schedule:
                unrolled = self._unrolled(frames)
                podem = Podem(
                    unrolled.circuit,
                    unrolled.fault_copies(fault),
                    assignable=[
                        pi for frame in unrolled.frame_pis for pi in frame
                    ],
                    observables=unrolled.observables,
                    backtrack_limit=self.backtrack_limit,
                )
                result = podem.run()
                backtracks += result.backtracks
                if result.found:
                    sequence = self._assignment_to_sequence(
                        unrolled, result.assignment
                    )
                    self.fsim.commit(sequence)
                    test_sequence.extend(sequence)
                    outcome = "detected"
                    break
                if result.status is PodemStatus.ABORTED:
                    outcome = "aborted"
                    # A longer window will only be harder; give up.
                    break
                outcome = "untestable"
            if outcome == "untestable":
                untestable += 1
            elif outcome == "aborted":
                aborted += 1
            # Note: a found sequence may not detect the targeted fault in
            # the committed (non-X) start state in rare X-optimism-free
            # cases; the simulator is the arbiter and simply leaves the
            # fault active for statistics.

        return DeterministicResult(
            circuit_name=self.circuit.name,
            test_sequence=test_sequence,
            detected=self.fsim.detected_count,
            total_faults=self.fsim.num_faults,
            untestable=untestable,
            aborted=aborted,
            elapsed_seconds=time.perf_counter() - start,
            backtracks=backtracks,
            targeted=targeted,
        )
